//! The center-based fragmentation algorithm (§3.1, Fig. 4).
//!
//! Centers are "gravity points in the graph, very much like spiders in a
//! web", ranked by a truncated status score (a variation of Hoede's
//! status score, ref [9]):
//!
//! ```text
//! score(i) = grade(i) + a·Σ nb(j,1) + a²·Σ nb(j,2) + a³·Σ nb(j,3)
//! ```
//!
//! with `grade(i)` the number of edges adjacent to `i`, `nb(j,d)` the
//! grade of node `j` at `d` edges from `i`, and `a < 1`.
//!
//! Fragments then grow from the centers. Two growth variants exist
//! (§3.1): one wave per turn in round-robin (the *diameter*-driven
//! variant shown in Fig. 4) or always expanding the currently smallest
//! fragment (the *size*-driven variant).
//!
//! §4.2.1 adds the *distributed centers* refinement: "we used the
//! coordinates assigned to the nodes to make sure that the selected nodes
//! would not be too close together" — Table 2 shows it slashing both ΔF
//! and D̄S.

use std::collections::BTreeSet;

use ds_graph::{CsrGraph, Edge, EdgeList, NodeId};

use crate::error::FragError;
use crate::fragmentation::Fragmentation;

/// How the `n` centers are picked from the score ranking.
#[derive(Clone, Debug, Default)]
pub enum CenterSelection {
    /// The `n` highest-scoring nodes (ties by lower id). The paper's
    /// original rule — which sometimes picks centers "quite close to each
    /// other" (§4.2.1).
    #[default]
    TopScores,
    /// The §4.2.1 refinement: from a candidate pool of the
    /// `pool_factor · n` best-scoring nodes, greedily pick centers that
    /// maximize the minimum distance to the centers already chosen.
    /// Requires coordinates.
    Distributed {
        /// Pool size multiplier (the paper's "group of possible centers").
        pool_factor: f64,
    },
    /// Caller-supplied centers (e.g. from application semantics).
    Explicit(Vec<NodeId>),
}

/// Which fragment grows next.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Growth {
    /// Fig. 4: `k := (k mod n) + 1` — every fragment gets one wave per
    /// turn, keeping *diameters* balanced.
    #[default]
    RoundRobin,
    /// "the fragment with the least number of edges is chosen for
    /// expansion until another fragment becomes the smallest" — keeps
    /// *sizes* balanced.
    SmallestFirst,
}

/// Configuration of the center-based algorithm.
#[derive(Clone, Debug)]
pub struct CenterConfig {
    /// Number of fragments / centers ("may depend on … the number of
    /// processors available").
    pub fragments: usize,
    /// The attenuation `a < 1` of the status score.
    pub alpha: f64,
    /// Neighbourhood depth of the score (3 in the paper's formula).
    pub depth: u32,
    /// Center selection rule.
    pub selection: CenterSelection,
    /// Growth variant.
    pub growth: Growth,
}

impl Default for CenterConfig {
    fn default() -> Self {
        CenterConfig {
            fragments: 4,
            alpha: 0.5,
            depth: 3,
            selection: CenterSelection::TopScores,
            growth: Growth::RoundRobin,
        }
    }
}

/// Result of a center-based run.
#[derive(Clone, Debug)]
pub struct CenterOutcome {
    pub fragmentation: Fragmentation,
    /// The chosen centers, fragment `k` grown from `centers[k]`.
    pub centers: Vec<NodeId>,
    /// Times the growth stalled on a disconnected remainder and an edge
    /// had to be force-assigned (deviation #3 in DESIGN.md).
    pub reseeds: usize,
}

/// Run the center-based fragmentation.
pub fn center_based(edges: &EdgeList, cfg: &CenterConfig) -> Result<CenterOutcome, FragError> {
    if edges.remaining() == 0 {
        return Err(FragError::EmptyRelation);
    }
    if cfg.fragments == 0 {
        return Err(FragError::InvalidConfig("fragments must be >= 1".into()));
    }
    if !(0.0..1.0).contains(&cfg.alpha) {
        return Err(FragError::InvalidConfig(format!(
            "alpha must be in [0,1), got {}",
            cfg.alpha
        )));
    }
    let alive_nodes = edges.alive_nodes();
    if cfg.fragments > alive_nodes.len() {
        return Err(FragError::TooManyFragments {
            requested: cfg.fragments,
            available: alive_nodes.len(),
        });
    }

    let centers = determine_centers(edges, cfg, &alive_nodes)?;
    let mut work = edges.clone();
    let n = cfg.fragments;

    // Initialisation (Fig. 4): V_i := {c_i}; E_i := edges adjacent to c_i.
    // Single assignment: an edge between two centers goes to the first.
    let mut frag_edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let mut v: Vec<BTreeSet<NodeId>> = centers.iter().map(|&c| BTreeSet::from([c])).collect();
    let mut frontier: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for k in 0..n {
        let taken = work.take_incident_to([centers[k]]);
        grow(
            &mut frag_edges[k],
            &mut v[k],
            &mut frontier[k],
            &work,
            &taken,
        );
    }

    let mut reseeds = 0usize;
    match cfg.growth {
        Growth::RoundRobin => {
            let mut stalled = 0usize;
            let mut k = 0usize;
            while !work.is_exhausted() {
                let taken = work.take_incident_to(frontier[k].iter().copied());
                if taken.is_empty() {
                    stalled += 1;
                    if stalled >= n {
                        reseed_smallest(
                            &mut work,
                            &mut frag_edges,
                            &mut v,
                            &mut frontier,
                            &mut reseeds,
                        );
                        stalled = 0;
                    }
                } else {
                    stalled = 0;
                    grow(
                        &mut frag_edges[k],
                        &mut v[k],
                        &mut frontier[k],
                        &work,
                        &taken,
                    );
                }
                k = (k + 1) % n;
            }
        }
        Growth::SmallestFirst => {
            let mut saturated = vec![false; n];
            while !work.is_exhausted() {
                // Smallest unsaturated fragment; ties to the lowest id.
                let k = match (0..n)
                    .filter(|&k| !saturated[k])
                    .min_by_key(|&k| (frag_edges[k].len(), k))
                {
                    Some(k) => k,
                    None => {
                        reseed_smallest(
                            &mut work,
                            &mut frag_edges,
                            &mut v,
                            &mut frontier,
                            &mut reseeds,
                        );
                        saturated.fill(false);
                        continue;
                    }
                };
                let taken = work.take_incident_to(frontier[k].iter().copied());
                if taken.is_empty() {
                    saturated[k] = true;
                } else {
                    grow(
                        &mut frag_edges[k],
                        &mut v[k],
                        &mut frontier[k],
                        &work,
                        &taken,
                    );
                }
            }
        }
    }

    let seeds: Vec<Vec<NodeId>> = centers.iter().map(|&c| vec![c]).collect();
    let fragmentation = Fragmentation::new(edges.node_count(), frag_edges, seeds);
    Ok(CenterOutcome {
        fragmentation,
        centers,
        reseeds,
    })
}

/// Add freshly taken edges to fragment `k`'s state and compute the new
/// frontier (nodes that first appeared in this wave).
fn grow(
    frag_edges: &mut Vec<Edge>,
    v_k: &mut BTreeSet<NodeId>,
    frontier: &mut Vec<NodeId>,
    work: &EdgeList,
    taken: &[u32],
) {
    let mut new_frontier = BTreeSet::new();
    for &i in taken {
        let e = work.edge(i);
        frag_edges.push(e);
        for node in [e.src, e.dst] {
            if !v_k.contains(&node) {
                new_frontier.insert(node);
            }
        }
    }
    v_k.extend(new_frontier.iter().copied());
    *frontier = new_frontier.into_iter().collect();
}

/// All fragments are stuck but edges remain (disconnected remainder):
/// hand the smallest fragment a seed in the remainder so growth resumes.
fn reseed_smallest(
    work: &mut EdgeList,
    frag_edges: &mut [Vec<Edge>],
    v: &mut [BTreeSet<NodeId>],
    frontier: &mut [Vec<NodeId>],
    reseeds: &mut usize,
) {
    let k = (0..frag_edges.len())
        .min_by_key(|&k| (frag_edges[k].len(), k))
        .expect("at least one fragment");
    let seed = work.min_alive_node_by(|n| n.0).expect("edges remain");
    let taken = work.take_incident_to([seed]);
    v[k].insert(seed);
    grow(
        &mut frag_edges[k],
        &mut v[k],
        &mut frontier[k],
        work,
        &taken,
    );
    *reseeds += 1;
}

/// The status scores of every node: `grade(i) + Σ_d a^d · Σ nb(j, d)`.
pub fn status_scores(edges: &EdgeList, alpha: f64, depth: u32) -> Vec<(NodeId, f64)> {
    // Work on the symmetric incidence structure: grade counts adjacent
    // connections regardless of direction.
    let g = symmetric_view(edges);
    edges
        .alive_nodes()
        .into_iter()
        .map(|i| {
            let mut score = g.out_degree(i) as f64;
            let sums = ds_graph::traverse::grade_sums_by_distance(&g, i, depth);
            let mut a = 1.0;
            for s in sums {
                a *= alpha;
                score += a * s as f64;
            }
            (i, score)
        })
        .collect()
}

/// Build the undirected CSR view of the alive edges.
fn symmetric_view(edges: &EdgeList) -> CsrGraph {
    let mut sym = Vec::with_capacity(edges.remaining() * 2);
    for (_, e) in edges.alive_edges() {
        sym.push(e);
        if !e.is_loop() {
            sym.push(e.reversed());
        }
    }
    CsrGraph::from_edges(edges.node_count(), &sym)
}

/// Pick the centers per the configured selection rule.
fn determine_centers(
    edges: &EdgeList,
    cfg: &CenterConfig,
    alive_nodes: &[NodeId],
) -> Result<Vec<NodeId>, FragError> {
    match &cfg.selection {
        CenterSelection::Explicit(centers) => {
            if centers.len() != cfg.fragments {
                return Err(FragError::InvalidConfig(format!(
                    "{} explicit centers for {} fragments",
                    centers.len(),
                    cfg.fragments
                )));
            }
            for &c in centers {
                if c.index() >= edges.node_count() {
                    return Err(FragError::InvalidConfig(format!("center {c} out of range")));
                }
            }
            Ok(centers.clone())
        }
        CenterSelection::TopScores => {
            let mut scored = status_scores(edges, cfg.alpha, cfg.depth);
            sort_by_score_desc(&mut scored);
            Ok(scored
                .into_iter()
                .take(cfg.fragments)
                .map(|(v, _)| v)
                .collect())
        }
        CenterSelection::Distributed { pool_factor } => {
            let coords = edges.coords().ok_or(FragError::MissingCoordinates)?;
            if *pool_factor < 1.0 {
                return Err(FragError::InvalidConfig("pool_factor must be >= 1".into()));
            }
            let mut scored = status_scores(edges, cfg.alpha, cfg.depth);
            sort_by_score_desc(&mut scored);
            let pool_size = ((cfg.fragments as f64 * pool_factor).ceil() as usize)
                .min(alive_nodes.len())
                .max(cfg.fragments);
            let pool: Vec<NodeId> = scored.into_iter().take(pool_size).map(|(v, _)| v).collect();

            // Greedy farthest-point selection: the top scorer first, then
            // always the pool node farthest from the chosen set.
            let mut centers = vec![pool[0]];
            while centers.len() < cfg.fragments {
                let next = pool
                    .iter()
                    .copied()
                    .filter(|c| !centers.contains(c))
                    .max_by(|&a, &b| {
                        let da = min_dist(coords, a, &centers);
                        let db = min_dist(coords, b, &centers);
                        da.partial_cmp(&db)
                            .expect("finite coords")
                            // Ties: keep pool (score) order — smaller index wins.
                            .then_with(|| pool_pos(&pool, b).cmp(&pool_pos(&pool, a)))
                    })
                    .expect("pool_size >= fragments");
                centers.push(next);
            }
            Ok(centers)
        }
    }
}

fn sort_by_score_desc(scored: &mut [(NodeId, f64)]) {
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then_with(|| a.0.cmp(&b.0))
    });
}

fn min_dist(coords: &[ds_graph::Coord], v: NodeId, chosen: &[NodeId]) -> f64 {
    chosen
        .iter()
        .map(|&c| coords[v.index()].distance(&coords[c.index()]))
        .fold(f64::INFINITY, f64::min)
}

fn pool_pos(pool: &[NodeId], v: NodeId) -> usize {
    pool.iter()
        .position(|&p| p == v)
        .expect("candidate from pool")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_gen::deterministic::{grid, path, two_triangles_bridge};
    use ds_gen::{generate_transportation, TransportationConfig};

    #[test]
    fn status_score_prefers_hubs() {
        // Star plus tail: center of the star must outscore leaves.
        let g = two_triangles_bridge();
        let scores = status_scores(&g.edge_list(), 0.5, 3);
        let score_of = |v: u32| scores.iter().find(|(n, _)| n.0 == v).unwrap().1;
        // Nodes 2 and 3 are the bridge hubs with grade 3.
        assert!(score_of(2) > score_of(0));
        assert!(score_of(3) > score_of(5));
    }

    #[test]
    fn status_score_alpha_zero_is_grade() {
        let g = path(4);
        let scores = status_scores(&g.edge_list(), 0.0, 3);
        for (v, s) in scores {
            let grade = if v.0 == 0 || v.0 == 3 { 1.0 } else { 2.0 };
            assert_eq!(s, grade, "alpha=0 reduces score to grade for {v}");
        }
    }

    #[test]
    fn round_robin_partitions_and_balances() {
        let g = grid(8, 8);
        let out = center_based(
            &g.edge_list(),
            &CenterConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap();
        out.fragmentation.validate(&g.connections).unwrap();
        assert_eq!(out.fragmentation.fragment_count(), 4);
        assert_eq!(out.centers.len(), 4);
        let m = out.fragmentation.metrics();
        // Balance goal: deviation well under the mean.
        assert!(
            m.dev_fragment_edges < m.avg_fragment_edges,
            "round robin should balance: {m}"
        );
    }

    #[test]
    fn smallest_first_partitions() {
        let g = grid(8, 8);
        let out = center_based(
            &g.edge_list(),
            &CenterConfig {
                fragments: 4,
                growth: Growth::SmallestFirst,
                ..Default::default()
            },
        )
        .unwrap();
        out.fragmentation.validate(&g.connections).unwrap();
        assert_eq!(out.fragmentation.fragment_count(), 4);
    }

    #[test]
    fn explicit_centers_respected() {
        let g = grid(6, 6);
        let centers = vec![NodeId(0), NodeId(35)];
        let out = center_based(
            &g.edge_list(),
            &CenterConfig {
                fragments: 2,
                selection: CenterSelection::Explicit(centers.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.centers, centers);
        assert!(out.fragmentation.fragment(0).contains_node(NodeId(0)));
        assert!(out.fragmentation.fragment(1).contains_node(NodeId(35)));
    }

    #[test]
    fn distributed_centers_spread_out() {
        let cfg = TransportationConfig::table1();
        let g = generate_transportation(&cfg, 3);
        let el = g.edge_list();
        let plain = center_based(
            &el,
            &CenterConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let spread = center_based(
            &el,
            &CenterConfig {
                fragments: 4,
                selection: CenterSelection::Distributed { pool_factor: 8.0 },
                ..Default::default()
            },
        )
        .unwrap();
        let min_pairwise = |cs: &[NodeId]| {
            let mut best = f64::INFINITY;
            for i in 0..cs.len() {
                for j in (i + 1)..cs.len() {
                    best = best.min(g.coords[cs[i].index()].distance(&g.coords[cs[j].index()]));
                }
            }
            best
        };
        assert!(
            min_pairwise(&spread.centers) >= min_pairwise(&plain.centers),
            "distributed selection must not bring centers closer"
        );
        // With an 8x pool over 4 clusters, centers land in distinct
        // clusters, far apart.
        assert!(min_pairwise(&spread.centers) > cfg.cluster_extent);
    }

    #[test]
    fn disconnected_remainder_is_absorbed() {
        // Two separate paths, both centers in the first one: the second
        // component must still be assigned (via reseeding).
        let mut g = path(6);
        g.nodes = 12;
        for i in 6..11u32 {
            g.connections.push(Edge::unit(NodeId(i), NodeId(i + 1)));
        }
        for i in 0..6 {
            g.coords.push(ds_graph::Coord::new(100.0 + i as f64, 0.0));
        }
        let out = center_based(
            &g.edge_list(),
            &CenterConfig {
                fragments: 2,
                selection: CenterSelection::Explicit(vec![NodeId(1), NodeId(4)]),
                ..Default::default()
            },
        )
        .unwrap();
        out.fragmentation.validate(&g.connections).unwrap();
        assert!(out.reseeds >= 1);
    }

    #[test]
    fn config_validation() {
        let g = path(5);
        let el = g.edge_list();
        assert!(matches!(
            center_based(
                &el,
                &CenterConfig {
                    fragments: 0,
                    ..Default::default()
                }
            ),
            Err(FragError::InvalidConfig(_))
        ));
        assert!(matches!(
            center_based(
                &el,
                &CenterConfig {
                    alpha: 1.5,
                    ..Default::default()
                }
            ),
            Err(FragError::InvalidConfig(_))
        ));
        assert!(matches!(
            center_based(
                &el,
                &CenterConfig {
                    fragments: 99,
                    ..Default::default()
                }
            ),
            Err(FragError::TooManyFragments { .. })
        ));
        assert!(matches!(
            center_based(
                &el,
                &CenterConfig {
                    fragments: 2,
                    selection: CenterSelection::Explicit(vec![NodeId(0)]),
                    ..Default::default()
                }
            ),
            Err(FragError::InvalidConfig(_))
        ));
    }

    #[test]
    fn every_fragment_contains_its_center() {
        let g = grid(7, 7);
        let out = center_based(
            &g.edge_list(),
            &CenterConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for (k, &c) in out.centers.iter().enumerate() {
            assert!(
                out.fragmentation.fragment(k).contains_node(c),
                "fragment {k} lost center {c}"
            );
        }
    }
}
