//! Semantic (label-driven) fragmentation.
//!
//! §2.1 assumes "an initial data fragmentation based on application's
//! semantics. Consider a railway network connecting cities in Europe …
//! data are naturally fragmented by country." This module turns such a
//! node labeling (city → country) into a [`Fragmentation`]: in-label
//! edges stay home, border-crossing edges get an owner per
//! [`CrossingPolicy`], and the border cities become the disconnection
//! sets.

use ds_graph::Edge;

use crate::error::FragError;
use crate::fragmentation::Fragmentation;
use crate::policy::{fragmentation_from_blocks, CrossingPolicy};

/// Fragment a relation by an application-supplied node labeling.
///
/// `label_of[v]` assigns node `v` to a part; labels must be dense
/// (`0..part_count`).
pub fn by_labels(
    node_count: usize,
    edges: &[Edge],
    label_of: &[u32],
    part_count: usize,
    policy: CrossingPolicy,
) -> Result<Fragmentation, FragError> {
    if edges.is_empty() {
        return Err(FragError::EmptyRelation);
    }
    if part_count == 0 {
        return Err(FragError::InvalidConfig("part_count must be >= 1".into()));
    }
    fragmentation_from_blocks(node_count, edges, label_of, part_count, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_gen::{generate_transportation, TransportationConfig};
    use ds_graph::NodeId;

    #[test]
    fn ground_truth_clusters_give_small_ds() {
        // Fragment a transportation graph by its generator labels: the
        // disconnection sets are exactly the border nodes of the few
        // inter-cluster links.
        let cfg = TransportationConfig::table1();
        let g = generate_transportation(&cfg, 11);
        let labels = g.cluster_of.clone().unwrap();
        let frag = by_labels(
            g.nodes,
            &g.connections,
            &labels,
            4,
            CrossingPolicy::LowerBlock,
        )
        .unwrap();
        frag.validate(&g.connections).unwrap();
        let m = frag.metrics();
        assert_eq!(m.fragment_count, 4);
        // Chain topology with 2 links per pair: DS of 1..2 nodes each.
        assert!(m.avg_ds_nodes <= 2.5, "semantic DS should be tiny: {m}");
        assert!(m.loosely_connected, "chain topology stays acyclic");
    }

    #[test]
    fn crossing_edges_create_borders() {
        // Two labelled halves of a path share exactly the boundary node.
        let edges: Vec<Edge> = (0..4u32)
            .map(|i| Edge::unit(NodeId(i), NodeId(i + 1)))
            .collect();
        let frag = by_labels(5, &edges, &[0, 0, 0, 1, 1], 2, CrossingPolicy::LowerBlock).unwrap();
        let ds = frag.disconnection_sets();
        assert_eq!(ds[&(0, 1)], vec![NodeId(3)]);
    }

    #[test]
    fn errors_propagate() {
        assert_eq!(
            by_labels(2, &[], &[0, 0], 1, CrossingPolicy::LowerBlock).unwrap_err(),
            FragError::EmptyRelation
        );
        let e = [Edge::unit(NodeId(0), NodeId(1))];
        assert!(matches!(
            by_labels(2, &e, &[0, 0], 0, CrossingPolicy::LowerBlock),
            Err(FragError::InvalidConfig(_))
        ));
        assert!(matches!(
            by_labels(2, &e, &[0], 1, CrossingPolicy::LowerBlock),
            Err(FragError::LabelLengthMismatch { .. })
        ));
    }
}
