//! The linear fragmentation algorithm (§3.3, Fig. 7).
//!
//! "The algorithm starts by selecting a group of start nodes located on an
//! extreme end of the graph. In each iteration, it then accumulates the
//! adjacent edges in a fragment … Once the number of edges in a fragment
//! has reached a certain threshold (defined as |E|/f), the nodes on the
//! boundary are put in a disconnection set and used as starting points for
//! the next fragment."
//!
//! The fragmentation graph is guaranteed acyclic: each wave consumes *all*
//! edges incident to the frontier ("in each iteration all edges starting
//! from the boundary nodes have to be added to the fragment to avoid
//! cycles"), so interior nodes never resurface in later fragments and only
//! consecutive fragments share nodes.
//!
//! Deviations from the paper's pseudocode (documented in DESIGN.md):
//! on a disconnected graph Fig. 7 loops forever when the frontier dies
//! with edges remaining; we re-seed at the extreme-most remaining node,
//! which keeps the fragmentation graph a forest.

use std::collections::BTreeSet;

use ds_graph::{Coord, Edge, EdgeList, NodeId};

use crate::error::FragError;
use crate::fragmentation::Fragmentation;

/// Sweep direction: which coordinate extreme the start nodes sit on.
/// Fig. 8 shows the choice matters: sweeping along the long axis of an
/// elongated graph crosses narrow sections and yields small boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Sweep {
    /// Start at smallest x, sweep right (the paper's default: "We have
    /// chosen to start at the leftmost side").
    #[default]
    XAscending,
    /// Start at largest x, sweep left.
    XDescending,
    /// Start at smallest y, sweep up.
    YAscending,
    /// Start at largest y, sweep down — the "starting at the top and going
    /// down" of Fig. 8.
    YDescending,
}

impl Sweep {
    /// Sort key: smaller = earlier in the sweep.
    fn key(self, c: Coord) -> f64 {
        match self {
            Sweep::XAscending => c.x,
            Sweep::XDescending => -c.x,
            Sweep::YAscending => c.y,
            Sweep::YDescending => -c.y,
        }
    }
}

/// Configuration of the linear sweep.
#[derive(Clone, Debug)]
pub struct LinearConfig {
    /// `f` — the requested number of fragments. The threshold is
    /// `|E| / f`; the realized count can deviate slightly (§4.2.1: "a
    /// slight variation in number of fragments possible").
    pub fragments: usize,
    /// `s` — how many extreme nodes seed the first fragment.
    pub start_nodes: usize,
    /// Sweep direction.
    pub sweep: Sweep,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            fragments: 4,
            start_nodes: 1,
            sweep: Sweep::XAscending,
        }
    }
}

/// Result of a linear sweep: the fragmentation plus the boundary sets the
/// algorithm recorded as it closed each fragment (`DS_k(k+1) := start_n`).
#[derive(Clone, Debug)]
pub struct LinearOutcome {
    pub fragmentation: Fragmentation,
    /// `recorded_ds[k]` is the boundary recorded between fragments `k` and
    /// `k+1` (empty when a component ended exactly at the cut).
    pub recorded_ds: Vec<Vec<NodeId>>,
    /// How many times the sweep had to re-seed because the frontier died
    /// with edges remaining (0 on connected graphs).
    pub reseeds: usize,
}

/// Run the linear fragmentation of Fig. 7 on a working edge set.
/// Requires coordinates ([`FragError::MissingCoordinates`] otherwise).
pub fn linear_sweep(edges: &EdgeList, cfg: &LinearConfig) -> Result<LinearOutcome, FragError> {
    if edges.remaining() == 0 {
        return Err(FragError::EmptyRelation);
    }
    if cfg.fragments == 0 {
        return Err(FragError::InvalidConfig("fragments must be >= 1".into()));
    }
    if cfg.start_nodes == 0 {
        return Err(FragError::InvalidConfig("start_nodes must be >= 1".into()));
    }
    let coords = edges
        .coords()
        .ok_or(FragError::MissingCoordinates)?
        .to_vec();
    let key = |v: NodeId| cfg.sweep.key(coords[v.index()]);

    let mut work = edges.clone();
    // threshold := |E| / f  (at least 1 so tiny graphs still progress).
    let threshold = (work.remaining() / cfg.fragments).max(1);

    // start_n := s nodes with smallest sweep key.
    let mut all: Vec<NodeId> = work.alive_nodes();
    all.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("finite coords"));
    let mut start_n: BTreeSet<NodeId> = all.into_iter().take(cfg.start_nodes).collect();

    let node_count = work.node_count();
    let mut edge_sets: Vec<Vec<Edge>> = Vec::new();
    let mut seed_sets: Vec<Vec<NodeId>> = Vec::new();
    let mut recorded_ds: Vec<Vec<NodeId>> = Vec::new();
    let mut reseeds = 0usize;

    while !work.is_exhausted() {
        let seeds: Vec<NodeId> = start_n.iter().copied().collect();
        let mut frag_edges: Vec<Edge> = Vec::new();
        let mut v_k: BTreeSet<NodeId> = start_n.clone();

        // Inner loop: accumulate whole waves until the threshold trips.
        while frag_edges.len() < threshold && !work.is_exhausted() {
            let taken = work.take_incident_to(start_n.iter().copied());
            if taken.is_empty() {
                // Frontier died. If this fragment is still empty and edges
                // remain, the graph is disconnected: re-seed at the
                // extreme-most remaining node (deviation #1).
                if frag_edges.is_empty() {
                    let reseed = work
                        .min_alive_node_by(|v| OrderedF64(key(v)))
                        .expect("edges remain, so an alive node exists");
                    start_n = BTreeSet::from([reseed]);
                    v_k.insert(reseed);
                    reseeds += 1;
                    continue;
                }
                // Component exhausted mid-fragment: close with an empty
                // boundary; the outer loop re-seeds via the same path.
                start_n.clear();
                break;
            }
            let new_e: Vec<Edge> = taken.iter().map(|&i| work.edge(i)).collect();
            // start_n := nodes of new_e not already in V_k (Fig. 7).
            let mut next_frontier = BTreeSet::new();
            for e in &new_e {
                for v in [e.src, e.dst] {
                    if !v_k.contains(&v) {
                        next_frontier.insert(v);
                    }
                }
            }
            v_k.extend(next_frontier.iter().copied());
            frag_edges.extend(new_e);
            start_n = next_frontier;
        }

        // DS_k(k+1) := start_n — the boundary when the fragment closed.
        edge_sets.push(frag_edges);
        seed_sets.push(seeds);
        if !work.is_exhausted() {
            recorded_ds.push(start_n.iter().copied().collect());
            if start_n.is_empty() {
                // Disconnected: seed the next fragment on the extreme-most
                // remaining node.
                let reseed = work
                    .min_alive_node_by(|v| OrderedF64(key(v)))
                    .expect("edges remain, so an alive node exists");
                start_n = BTreeSet::from([reseed]);
                reseeds += 1;
            }
        }
    }

    let fragmentation = Fragmentation::new(node_count, edge_sets, seed_sets);
    Ok(LinearOutcome {
        fragmentation,
        recorded_ds,
        reseeds,
    })
}

/// Total-order wrapper for finite f64 sweep keys.
#[derive(PartialEq, PartialOrd)]
struct OrderedF64(f64);

#[cfg(test)]
mod tests {
    use super::*;
    use ds_gen::deterministic::{grid, path};

    #[test]
    fn path_split_in_two_at_midpoint() {
        // 0-1-2-3-4-5-6-7 (7 edges), f=2 -> threshold 3.
        let g = path(8);
        let out = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let frag = &out.fragmentation;
        frag.validate(&g.connections).unwrap();
        assert!(frag.fragment_count() >= 2);
        assert!(frag.fragmentation_graph().is_acyclic());
        assert_eq!(out.reseeds, 0);
        // Waves from node 0 consume one edge each; the first fragment
        // closes at exactly the threshold.
        assert_eq!(frag.fragment(0).edge_count(), 3);
    }

    #[test]
    fn recorded_ds_equals_true_ds() {
        let g = grid(10, 4);
        let out = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let frag = &out.fragmentation;
        let true_ds = frag.disconnection_sets();
        // Consecutive fragments only; recorded boundary must equal the
        // true node intersection.
        for (k, recorded) in out.recorded_ds.iter().enumerate() {
            if recorded.is_empty() {
                continue;
            }
            let truth = true_ds.get(&(k, k + 1)).cloned().unwrap_or_default();
            assert_eq!(recorded, &truth, "boundary between {k} and {}", k + 1);
        }
        // And no non-consecutive pair shares nodes.
        for (&(a, b), nodes) in &true_ds {
            assert_eq!(b, a + 1, "non-consecutive fragments share {nodes:?}");
        }
    }

    #[test]
    fn acyclic_guarantee_on_grid() {
        for f in [2, 3, 5, 8] {
            let g = grid(12, 5);
            let out = linear_sweep(
                &g.edge_list(),
                &LinearConfig {
                    fragments: f,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                out.fragmentation.fragmentation_graph().is_acyclic(),
                "linear sweep must be loosely connected (f={f})"
            );
            out.fragmentation.validate(&g.connections).unwrap();
        }
    }

    #[test]
    fn sweep_direction_changes_first_seed() {
        let g = grid(6, 3); // wider than tall
        let left = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 3,
                sweep: Sweep::XAscending,
                ..Default::default()
            },
        )
        .unwrap();
        // Leftmost node is id 0 (coord 0,0) or 6/12 — all x=0.
        let f0 = left.fragmentation.fragment(0);
        assert!(f0.nodes().iter().any(|v| g.coords[v.index()].x == 0.0));

        let right = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 3,
                sweep: Sweep::XDescending,
                ..Default::default()
            },
        )
        .unwrap();
        let f0 = right.fragmentation.fragment(0);
        assert!(f0.nodes().iter().any(|v| g.coords[v.index()].x == 5.0));
    }

    #[test]
    fn single_fragment_takes_everything() {
        let g = grid(4, 4);
        let out = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.fragmentation.fragment_count(), 1);
        assert_eq!(
            out.fragmentation.fragment(0).edge_count(),
            g.connection_count()
        );
        assert!(out.recorded_ds.is_empty());
    }

    #[test]
    fn disconnected_graph_reseeds_and_stays_acyclic() {
        // Two disjoint paths; coordinates make them sweep one after the
        // other.
        let mut g = path(4); // nodes 0..4 at x=0..3
        let extra = path(4);
        // Shift the second path to x in 10..13 with node ids 4..8.
        let offset = 4u32;
        for e in extra.connections {
            g.connections.push(ds_graph::Edge::new(
                NodeId(e.src.0 + offset),
                NodeId(e.dst.0 + offset),
                e.cost,
            ));
        }
        for c in extra.coords {
            g.coords.push(ds_graph::Coord::new(c.x + 10.0, c.y));
        }
        g.nodes = 8;
        let out = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.reseeds >= 1, "disconnected graph must re-seed");
        assert!(out.fragmentation.fragmentation_graph().is_acyclic());
        out.fragmentation.validate(&g.connections).unwrap();
    }

    #[test]
    fn empty_relation_rejected() {
        let el = ds_graph::EdgeList::new(3, vec![]).with_coords(vec![Coord::default(); 3]);
        assert_eq!(
            linear_sweep(&el, &LinearConfig::default()).unwrap_err(),
            FragError::EmptyRelation
        );
    }

    #[test]
    fn missing_coordinates_rejected() {
        let el = ds_graph::EdgeList::new(2, vec![Edge::unit(NodeId(0), NodeId(1))]);
        assert_eq!(
            linear_sweep(&el, &LinearConfig::default()).unwrap_err(),
            FragError::MissingCoordinates
        );
    }

    #[test]
    fn zero_fragments_rejected() {
        let g = path(4);
        assert!(matches!(
            linear_sweep(
                &g.edge_list(),
                &LinearConfig {
                    fragments: 0,
                    ..Default::default()
                }
            ),
            Err(FragError::InvalidConfig(_))
        ));
    }

    #[test]
    fn multiple_start_nodes() {
        let g = grid(8, 4);
        let out = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 4,
                start_nodes: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // All four leftmost (x=0) nodes seed fragment 0.
        let f0 = out.fragmentation.fragment(0);
        let left_col = (0..4).filter(|&r| f0.contains_node(NodeId(r * 8))).count();
        assert_eq!(left_col, 4);
        out.fragmentation.validate(&g.connections).unwrap();
    }
}
