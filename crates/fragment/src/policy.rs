//! Crossing-edge ownership and the node-blocks → fragmentation builder.
//!
//! The bond-energy and semantic fragmenters decide *node blocks* first;
//! edges with endpoints in two different blocks ("connections with other
//! fragments", §3.2) must then be assigned to exactly one fragment — the
//! other endpoint becomes a shared border node, i.e. a disconnection-set
//! member. The paper does not fix this rule; we expose it as a policy and
//! measure its effect in the `ablation-crossing` experiment.

use ds_graph::{Edge, NodeId};

use crate::error::FragError;
use crate::fragmentation::Fragmentation;

/// Who owns an edge whose endpoints fall into two different node blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CrossingPolicy {
    /// The lower-numbered block owns the edge. Deterministic and simple;
    /// concentrates border nodes on the higher-numbered side.
    #[default]
    LowerBlock,
    /// The block that currently holds fewer edges owns it — trades a
    /// little disconnection-set focus for balance.
    Balance,
}

/// Build a [`Fragmentation`] from a node-block labeling.
///
/// `block_of[v]` is the block of node `v`; blocks must be numbered
/// `0..block_count`. In-block edges go to their block's fragment; crossing
/// edges are assigned per `policy`.
pub fn fragmentation_from_blocks(
    node_count: usize,
    edges: &[Edge],
    block_of: &[u32],
    block_count: usize,
    policy: CrossingPolicy,
) -> Result<Fragmentation, FragError> {
    if block_of.len() != node_count {
        return Err(FragError::LabelLengthMismatch {
            labels: block_of.len(),
            node_count,
        });
    }
    if let Some(&bad) = block_of.iter().find(|&&b| b as usize >= block_count) {
        return Err(FragError::InvalidConfig(format!(
            "block label {bad} out of range 0..{block_count}"
        )));
    }
    let mut sets: Vec<Vec<Edge>> = vec![Vec::new(); block_count];
    for e in edges {
        let (ba, bb) = (
            block_of[e.src.index()] as usize,
            block_of[e.dst.index()] as usize,
        );
        let owner = if ba == bb {
            ba
        } else {
            match policy {
                CrossingPolicy::LowerBlock => ba.min(bb),
                CrossingPolicy::Balance => {
                    // Prefer the currently smaller fragment; ties to the
                    // lower block keep it deterministic.
                    match sets[ba].len().cmp(&sets[bb].len()) {
                        std::cmp::Ordering::Less => ba,
                        std::cmp::Ordering::Greater => bb,
                        std::cmp::Ordering::Equal => ba.min(bb),
                    }
                }
            }
        };
        sets[owner].push(*e);
    }
    // Seed every node into its own block so isolated nodes stay owned.
    let mut seeds: Vec<Vec<NodeId>> = vec![Vec::new(); block_count];
    for (v, &b) in block_of.iter().enumerate() {
        seeds[b as usize].push(NodeId::from_index(v));
    }
    Ok(Fragmentation::new(node_count, sets, seeds))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .map(|&(a, b)| Edge::unit(NodeId(a), NodeId(b)))
            .collect()
    }

    #[test]
    fn in_block_edges_stay_home() {
        let e = edges(&[(0, 1), (2, 3)]);
        let frag =
            fragmentation_from_blocks(4, &e, &[0, 0, 1, 1], 2, CrossingPolicy::LowerBlock).unwrap();
        assert_eq!(frag.fragment(0).edge_count(), 1);
        assert_eq!(frag.fragment(1).edge_count(), 1);
        assert!(frag.disconnection_sets().is_empty());
    }

    #[test]
    fn lower_block_policy_creates_shared_node_on_high_side() {
        // Crossing edge 1-2 goes to block 0; node 2 becomes shared.
        let e = edges(&[(0, 1), (1, 2), (2, 3)]);
        let frag =
            fragmentation_from_blocks(4, &e, &[0, 0, 1, 1], 2, CrossingPolicy::LowerBlock).unwrap();
        let ds = frag.disconnection_sets();
        assert_eq!(ds[&(0, 1)], vec![NodeId(2)]);
        frag.validate(&e).unwrap();
    }

    #[test]
    fn balance_policy_evens_out_sizes() {
        // Block 0 already holds 2 edges, block 1 none; the crossing edge
        // should go to block 1.
        let e = edges(&[(0, 1), (0, 1), (1, 2)]);
        let frag =
            fragmentation_from_blocks(3, &e, &[0, 0, 1], 2, CrossingPolicy::Balance).unwrap();
        assert_eq!(frag.fragment(0).edge_count(), 2);
        assert_eq!(frag.fragment(1).edge_count(), 1);
        // Node 1 is now shared instead of node 2.
        assert_eq!(frag.disconnection_sets()[&(0, 1)], vec![NodeId(1)]);
    }

    #[test]
    fn isolated_nodes_seeded_into_their_block() {
        let frag = fragmentation_from_blocks(
            3,
            &edges(&[(0, 1)]),
            &[0, 0, 1],
            2,
            CrossingPolicy::LowerBlock,
        )
        .unwrap();
        assert!(frag.fragment(1).contains_node(NodeId(2)));
    }

    #[test]
    fn label_validation() {
        let e = edges(&[(0, 1)]);
        assert!(matches!(
            fragmentation_from_blocks(2, &e, &[0], 1, CrossingPolicy::LowerBlock),
            Err(FragError::LabelLengthMismatch { .. })
        ));
        assert!(matches!(
            fragmentation_from_blocks(2, &e, &[0, 5], 2, CrossingPolicy::LowerBlock),
            Err(FragError::InvalidConfig(_))
        ));
    }
}
