//! The bond-energy fragmentation algorithm (§3.2, Fig. 5).
//!
//! "Columns of this matrix are reordered in such a way that nodes that are
//! closely related are put closely together. In this way, clusters are
//! formed along the diagonal of the matrix. By splitting the matrix in
//! such a way that the number of 1's … outside each cluster is small, the
//! disconnection sets are kept small."
//!
//! The reordering is the McCormick bond-energy placement: starting from a
//! chosen first column, each remaining column is inserted at the position
//! (left end, right end, or between two placed columns) that maximizes the
//! sum of inner products of adjacent placed columns; the procedure is
//! restarted from every possible first column and the best-scoring
//! ordering wins ("it has to be iterated over all the columns").
//!
//! Splitting scans the ordered matrix left to right once and cuts at
//! cheap boundaries. The paper offers two local conditions — a local
//! minimum of the outside-connection count, or a user-supplied threshold
//! ("it is split as soon as the number of connections to nodes outside
//! the current block reaches the threshold") — and picks the threshold
//! variant; both are implemented here ([`SplitRule`]), plus a quantile
//! form of the threshold for graphs without a crisp cluster structure.
//! The "finetuning … taking into account the number of edges in the
//! current block … avoids generating fragments that are 'too small'" is
//! the `min_block_edges` guard.

use ds_graph::{AdjacencyMatrix, CsrGraph, Edge, EdgeList, NodeId};

use crate::error::FragError;
use crate::fragmentation::Fragmentation;
use crate::policy::{fragmentation_from_blocks, CrossingPolicy};

/// The local split condition applied while scanning the reordered matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SplitRule {
    /// Split wherever at most this many connections cross the boundary —
    /// the paper's user-supplied threshold. A boundary between clusters of
    /// a transportation graph crosses only the few inter-cluster links, so
    /// a threshold a little above the expected link count (Table 1: 2.25)
    /// recovers the clusters.
    CutBelowThreshold(usize),
    /// Like `CutBelowThreshold`, but the threshold is the given quantile
    /// (in `[0, 1]`) of the observed boundary-cut profile. Robust on
    /// general graphs where absolute cut sizes are unpredictable.
    CutQuantile(f64),
    /// Split at strict local minima of the boundary-cut profile — the
    /// paper's first option ("split as soon as a local minimum is
    /// reached"), which it notes "usually turns out not to be best".
    LocalMinimum,
}

/// Configuration of the bond-energy fragmenter.
#[derive(Clone, Debug)]
pub struct BondEnergyConfig {
    /// Split condition.
    pub split: SplitRule,
    /// A block only closes once it holds at least this many edges.
    pub min_block_edges: usize,
    /// Restart cap for the placement loop (`None` = all first columns, as
    /// the paper prescribes; the loop is O(n³) per restart, so cap it for
    /// graphs beyond a few hundred nodes — deviation #4 in DESIGN.md).
    pub max_restarts: Option<usize>,
    /// Ownership rule for block-crossing edges.
    pub crossing_policy: CrossingPolicy,
}

impl Default for BondEnergyConfig {
    fn default() -> Self {
        BondEnergyConfig {
            split: SplitRule::CutBelowThreshold(3),
            min_block_edges: 8,
            max_restarts: None,
            crossing_policy: CrossingPolicy::LowerBlock,
        }
    }
}

/// Result of a bond-energy run.
#[derive(Clone, Debug)]
pub struct BondEnergyOutcome {
    pub fragmentation: Fragmentation,
    /// The winning column ordering (node ids, left to right).
    pub order: Vec<NodeId>,
    /// The measure of effectiveness of that ordering: the sum of inner
    /// products of adjacent placed columns.
    pub measure: u64,
    /// `cut_profile[t]` = connections crossing the boundary after position
    /// `t` of the ordering.
    pub cut_profile: Vec<usize>,
}

/// Run the bond-energy fragmentation.
pub fn bond_energy(
    edges: &EdgeList,
    cfg: &BondEnergyConfig,
) -> Result<BondEnergyOutcome, FragError> {
    if edges.remaining() == 0 {
        return Err(FragError::EmptyRelation);
    }
    if let SplitRule::CutQuantile(q) = cfg.split {
        if !(0.0..=1.0).contains(&q) {
            return Err(FragError::InvalidConfig(format!(
                "quantile {q} outside [0,1]"
            )));
        }
    }
    if matches!(cfg.max_restarts, Some(0)) {
        return Err(FragError::InvalidConfig("max_restarts must be >= 1".into()));
    }

    let n = edges.node_count();
    let sym = symmetric_graph(edges);
    let matrix = AdjacencyMatrix::from_graph(&sym);
    let bonds = BondMatrix::new(&matrix);

    // Placement restarts: all first columns, or a deterministic sample.
    let restarts: Vec<usize> = match cfg.max_restarts {
        None => (0..n).collect(),
        Some(k) => sample_indices(n, k),
    };
    let mut best: Option<(Vec<usize>, u64)> = None;
    for &s in &restarts {
        let (order, me) = place_from(&bonds, s);
        if best.as_ref().is_none_or(|(_, b)| me > *b) {
            best = Some((order, me));
        }
    }
    let (order, measure) = best.expect("graph is non-empty");

    // Scan and split.
    let cut_profile = boundary_cut_profile(&sym, &order);
    let threshold = match cfg.split {
        SplitRule::CutBelowThreshold(t) => Some(t),
        SplitRule::CutQuantile(q) => Some(quantile(&cut_profile, q)),
        SplitRule::LocalMinimum => None,
    };
    let block_of = split_blocks(&sym, &order, &cut_profile, threshold, cfg.min_block_edges);
    let block_count = 1 + *block_of.iter().max().expect("n >= 1 since edges exist") as usize;

    let all_edges: Vec<Edge> = edges.alive_edges().map(|(_, e)| e).collect();
    let fragmentation =
        fragmentation_from_blocks(n, &all_edges, &block_of, block_count, cfg.crossing_policy)?;
    let order = order.into_iter().map(NodeId::from_index).collect();
    Ok(BondEnergyOutcome {
        fragmentation,
        order,
        measure,
        cut_profile,
    })
}

/// Precomputed column inner products ("bonds") of the adjacency matrix.
struct BondMatrix {
    n: usize,
    b: Vec<u32>,
}

impl BondMatrix {
    fn new(m: &AdjacencyMatrix) -> Self {
        let n = m.order();
        let cols: Vec<ds_graph::BitSet> = (0..n).map(|j| m.column(j)).collect();
        let mut b = vec![0u32; n * n];
        for j in 0..n {
            for k in j..n {
                let v = cols[j].intersection_count(&cols[k]) as u32;
                b[j * n + k] = v;
                b[k * n + j] = v;
            }
        }
        BondMatrix { n, b }
    }

    #[inline]
    fn get(&self, j: usize, k: usize) -> u64 {
        self.b[j * self.n + k] as u64
    }
}

/// Greedy insertion placement starting from column `s`; returns the
/// ordering and its measure of effectiveness.
fn place_from(bonds: &BondMatrix, s: usize) -> (Vec<usize>, u64) {
    let n = bonds.n;
    let mut order: Vec<usize> = Vec::with_capacity(n);
    order.push(s);
    let mut placed = vec![false; n];
    placed[s] = true;
    let mut me: u64 = 0;

    for _ in 1..n {
        let mut best_gain = i64::MIN;
        let mut best_col = usize::MAX;
        let mut best_pos = 0usize;
        #[allow(clippy::needless_range_loop)] // x is a column id, not just an index
        for x in 0..n {
            if placed[x] {
                continue;
            }
            // Position 0: left of everything.
            let gain0 = bonds.get(x, order[0]) as i64;
            if gain0 > best_gain {
                best_gain = gain0;
                best_col = x;
                best_pos = 0;
            }
            // Between order[p-1] and order[p].
            for p in 1..order.len() {
                let (l, r) = (order[p - 1], order[p]);
                let gain = bonds.get(l, x) as i64 + bonds.get(x, r) as i64 - bonds.get(l, r) as i64;
                if gain > best_gain {
                    best_gain = gain;
                    best_col = x;
                    best_pos = p;
                }
            }
            // Right end.
            let gain_end = bonds.get(*order.last().expect("non-empty"), x) as i64;
            if gain_end > best_gain {
                best_gain = gain_end;
                best_col = x;
                best_pos = order.len();
            }
        }
        order.insert(best_pos, best_col);
        placed[best_col] = true;
        me = (me as i64 + best_gain) as u64;
    }
    debug_assert_eq!(me, measure_of(bonds, &order));
    (order, me)
}

/// The measure of effectiveness of an ordering: Σ adjacent bonds.
fn measure_of(bonds: &BondMatrix, order: &[usize]) -> u64 {
    order.windows(2).map(|w| bonds.get(w[0], w[1])).sum()
}

/// `profile[t]` = number of connections crossing the boundary between
/// positions `0..=t` and `t+1..` of the ordering.
fn boundary_cut_profile(sym: &CsrGraph, order: &[usize]) -> Vec<usize> {
    let n = order.len();
    if n == 0 {
        return Vec::new();
    }
    let mut pos = vec![0usize; n];
    for (p, &v) in order.iter().enumerate() {
        pos[v] = p;
    }
    // Sweep: when the boundary moves right past position t, node order[t]
    // switches sides: edges to earlier positions stop crossing, edges to
    // later positions start crossing. Count each undirected connection
    // once via src-position < dst-position bookkeeping.
    let mut profile = vec![0usize; n];
    let mut cut = 0i64;
    for t in 0..n {
        let v = NodeId::from_index(order[t]);
        for (w, _) in sym.neighbors(v) {
            // Symmetric graph stores both directions; halve by only
            // counting pairs where the neighbour differs.
            let pw = pos[w.index()];
            if pw > t {
                cut += 1;
            } else if pw < t {
                cut -= 1;
            }
        }
        profile[t] = cut.max(0) as usize;
    }
    profile
}

/// Greedy left-to-right split. `threshold = Some(t)` uses the threshold
/// rule; `None` uses local minima of the profile. Returns block labels.
fn split_blocks(
    sym: &CsrGraph,
    order: &[usize],
    profile: &[usize],
    threshold: Option<usize>,
    min_block_edges: usize,
) -> Vec<u32> {
    let n = order.len();
    let mut pos = vec![0usize; n];
    for (p, &v) in order.iter().enumerate() {
        pos[v] = p;
    }
    let mut block_of = vec![0u32; n];
    let mut block = 0u32;
    let mut block_start = 0usize;
    let mut block_edges = 0usize;

    for t in 0..n {
        let v = NodeId::from_index(order[t]);
        // Connections from v back into the current block (each symmetric
        // pair counted once: the back-edge direction).
        block_edges += sym
            .neighbors(v)
            .filter(|(w, _)| {
                let pw = pos[w.index()];
                pw < t && pw >= block_start
            })
            .count();
        block_of[order[t]] = block;

        if t + 1 == n {
            break; // last column: nothing right of it.
        }
        let split_here = match threshold {
            Some(th) => profile[t] <= th,
            None => {
                // Strict local minimum of the cut profile.
                let left_ok = t == 0 || profile[t] <= profile[t - 1];
                left_ok && profile[t] < profile[t + 1]
            }
        };
        if split_here && block_edges >= min_block_edges {
            block += 1;
            block_start = t + 1;
            block_edges = 0;
        }
    }
    block_of
}

/// Fig. 5's count: the 1's of the block's columns that fall outside the
/// block's rows, i.e. connections between block nodes and all other
/// nodes. (Diagonal entries never leave their block.)
pub fn block_outside_connections(sym: &CsrGraph, block: &[NodeId]) -> usize {
    let mut in_block = vec![false; sym.node_count()];
    for &v in block {
        in_block[v.index()] = true;
    }
    let mut count = 0;
    for &v in block {
        for (w, _) in sym.neighbors(v) {
            if !in_block[w.index()] {
                count += 1;
            }
        }
    }
    count
}

/// Undirected CSR view of the alive edges (each connection once per
/// direction, self-loops dropped, duplicates merged).
fn symmetric_graph(edges: &EdgeList) -> CsrGraph {
    use std::collections::HashSet;
    let mut pairs: HashSet<(NodeId, NodeId)> = HashSet::new();
    for (_, e) in edges.alive_edges() {
        if !e.is_loop() {
            pairs.insert(e.undirected_key());
        }
    }
    let mut sym = Vec::with_capacity(pairs.len() * 2);
    for (a, b) in pairs {
        sym.push(Edge::unit(a, b));
        sym.push(Edge::unit(b, a));
    }
    CsrGraph::from_edges(edges.node_count(), &sym)
}

/// The `q`-quantile of the values (nearest-rank, on a sorted copy).
fn quantile(values: &[usize], q: f64) -> usize {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 - 1.0) * q).floor() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// `k` deterministic sample indices spread over `0..n`.
fn sample_indices(n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    (0..k).map(|i| i * n / k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_gen::deterministic::two_triangles_bridge;
    use ds_gen::{generate_transportation, TransportationConfig};

    /// The exact worked example of Fig. 5, reconstructed from the text:
    /// undirected edges 1-2, 2-3, 1-5, 2-5, 4-6 (1-indexed). "If nodes 1-3
    /// are grouped together, there are 2 connections with nodes outside
    /// the block, both with node 5. If instead nodes 1-4 are grouped
    /// together, there are 3 connections with nodes outside the block,
    /// with nodes 5 and 6."
    fn fig5_graph() -> EdgeList {
        let pairs = [(0u32, 1u32), (1, 2), (0, 4), (1, 4), (3, 5)];
        EdgeList::new(
            6,
            pairs
                .iter()
                .map(|&(a, b)| Edge::unit(NodeId(a), NodeId(b)))
                .collect(),
        )
    }

    #[test]
    fn fig5_worked_example() {
        let el = fig5_graph();
        let sym = symmetric_graph(&el);
        let block123 = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(block_outside_connections(&sym, &block123), 2);
        let block1234 = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(block_outside_connections(&sym, &block1234), 3);
    }

    #[test]
    fn fig5_split_prefers_small_ds() {
        // With a threshold of 2 and no minimum block size, the algorithm
        // must cut where only the two node-5 connections cross.
        let out = bond_energy(
            &fig5_graph(),
            &BondEnergyConfig {
                split: SplitRule::CutBelowThreshold(2),
                min_block_edges: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let m = out.fragmentation.metrics();
        assert!(m.fragment_count >= 2, "must split: {m}");
        assert!(
            m.avg_ds_nodes <= 1.0 + f64::EPSILON,
            "tiny disconnection sets: {m}"
        );
    }

    #[test]
    fn placement_groups_clusters_contiguously() {
        let g = two_triangles_bridge();
        let out = bond_energy(
            &g.edge_list(),
            &BondEnergyConfig {
                min_block_edges: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // In the winning order, the two triangles {0,1,2} and {3,4,5}
        // must occupy contiguous spans.
        let pos_of = |v: u32| out.order.iter().position(|&n| n.0 == v).unwrap();
        let left: Vec<usize> = (0..3).map(pos_of).collect();
        let right: Vec<usize> = (3..6).map(pos_of).collect();
        let lmax = *left.iter().max().unwrap();
        let lmin = *left.iter().min().unwrap();
        let rmax = *right.iter().max().unwrap();
        let rmin = *right.iter().min().unwrap();
        assert!(
            lmax < rmin || rmax < lmin,
            "clusters interleaved in order {:?}",
            out.order
        );
    }

    #[test]
    fn transportation_graph_recovers_clusters() {
        let cfg = TransportationConfig::table1();
        let g = generate_transportation(&cfg, 1);
        let out = bond_energy(
            &g.edge_list(),
            &BondEnergyConfig {
                split: SplitRule::CutBelowThreshold(4),
                min_block_edges: 30,
                max_restarts: Some(12),
                ..Default::default()
            },
        )
        .unwrap();
        out.fragmentation.validate(&g.connections).unwrap();
        let m = out.fragmentation.metrics();
        assert!(
            (3..=5).contains(&m.fragment_count),
            "should find ~4 clusters, got {}",
            m.fragment_count
        );
        // The headline claim: disconnection sets are small (Table 1: 2.4).
        assert!(m.avg_ds_nodes <= 5.0, "DS too large: {m}");
    }

    #[test]
    fn quantile_rule_splits_general_graphs() {
        use ds_gen::{generate_general, GeneralConfig};
        let g = generate_general(&GeneralConfig::default(), 2);
        let out = bond_energy(
            &g.edge_list(),
            &BondEnergyConfig {
                split: SplitRule::CutQuantile(0.12),
                min_block_edges: 40,
                max_restarts: Some(8),
                ..Default::default()
            },
        )
        .unwrap();
        out.fragmentation.validate(&g.connections).unwrap();
        assert!(
            out.fragmentation.fragment_count() >= 2,
            "quantile rule should split"
        );
    }

    #[test]
    fn local_minimum_rule_runs() {
        let g = two_triangles_bridge();
        let out = bond_energy(
            &g.edge_list(),
            &BondEnergyConfig {
                split: SplitRule::LocalMinimum,
                min_block_edges: 1,
                ..Default::default()
            },
        )
        .unwrap();
        out.fragmentation.validate(&g.connections).unwrap();
        assert!(out.fragmentation.fragment_count() >= 2);
    }

    #[test]
    fn measure_matches_definition() {
        let el = fig5_graph();
        let sym = symmetric_graph(&el);
        let m = AdjacencyMatrix::from_graph(&sym);
        let bonds = BondMatrix::new(&m);
        let (order, me) = place_from(&bonds, 0);
        assert_eq!(me, measure_of(&bonds, &order));
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn cut_profile_matches_brute_force() {
        let el = fig5_graph();
        let sym = symmetric_graph(&el);
        let order: Vec<usize> = vec![4, 0, 1, 2, 3, 5];
        let profile = boundary_cut_profile(&sym, &order);
        for t in 0..order.len() {
            let left: Vec<NodeId> = order[..=t].iter().map(|&v| NodeId::from_index(v)).collect();
            let brute = block_outside_connections(&sym, &left)
                // Outside of a prefix block is exactly the right side.
                ;
            assert_eq!(profile[t], brute, "at boundary {t}");
        }
    }

    #[test]
    fn restart_cap_respected_and_validated() {
        let g = two_triangles_bridge();
        for cap in [1, 2, 6] {
            let out = bond_energy(
                &g.edge_list(),
                &BondEnergyConfig {
                    max_restarts: Some(cap),
                    min_block_edges: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            out.fragmentation.validate(&g.connections).unwrap();
        }
    }

    #[test]
    fn config_validation() {
        let g = two_triangles_bridge();
        assert!(matches!(
            bond_energy(
                &g.edge_list(),
                &BondEnergyConfig {
                    split: SplitRule::CutQuantile(1.5),
                    ..Default::default()
                }
            ),
            Err(FragError::InvalidConfig(_))
        ));
        assert!(matches!(
            bond_energy(
                &g.edge_list(),
                &BondEnergyConfig {
                    max_restarts: Some(0),
                    ..Default::default()
                }
            ),
            Err(FragError::InvalidConfig(_))
        ));
        let empty = EdgeList::new(3, vec![]);
        assert_eq!(
            bond_energy(&empty, &BondEnergyConfig::default()).unwrap_err(),
            FragError::EmptyRelation
        );
    }

    #[test]
    fn min_block_guard_prevents_tiny_fragments() {
        let el = fig5_graph();
        // Huge guard: no split can ever close a block -> one fragment.
        let out = bond_energy(
            &el,
            &BondEnergyConfig {
                min_block_edges: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.fragmentation.fragment_count(), 1);
    }

    #[test]
    fn sample_indices_spread() {
        assert_eq!(sample_indices(10, 20), (0..10).collect::<Vec<_>>());
        let s = sample_indices(100, 4);
        assert_eq!(s, vec![0, 25, 50, 75]);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = vec![5usize, 1, 9, 3];
        assert_eq!(quantile(&v, 0.0), 1);
        assert_eq!(quantile(&v, 1.0), 9);
        assert_eq!(quantile(&v, 0.5), 3);
        assert_eq!(quantile(&[], 0.5), 0);
    }
}
