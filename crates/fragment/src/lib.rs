//! # ds-fragment — data fragmentation strategies for parallel transitive closure
//!
//! This crate is the paper's contribution (Houtsma, Apers & Schipper,
//! ICDE 1993): algorithms that split a connection relation into fragments
//! suitable for the *disconnection set approach*, plus the machinery to
//! describe and judge a fragmentation.
//!
//! Three quality axes drive the design (§2.2):
//! * **small disconnection sets** — border nodes act as the selective
//!   "keyhole" of per-fragment subqueries;
//! * **equally sized fragments** — balanced workload across processors;
//! * **acyclic fragmentation graph** — a unique chain of fragments per
//!   query ("loosely connected").
//!
//! Three fragmenters each optimise one axis:
//! * [`center::center_based`] (§3.1, Fig. 4) — balanced fragments grown
//!   from high-status "center" nodes, with the *distributed centers*
//!   refinement of §4.2.1;
//! * [`bond_energy::bond_energy`] (§3.2, Fig. 5) — small disconnection
//!   sets via adjacency-matrix clustering and threshold splitting;
//! * [`linear::linear_sweep`] (§3.3, Figs. 6–8) — a coordinate sweep that
//!   guarantees an acyclic fragmentation graph.
//!
//! [`semantic::by_labels`] implements the "initial data fragmentation
//! based on application's semantics" (countries in a railway network)
//! that §2.1 assumes.
//!
//! ```
//! use ds_fragment::linear::{linear_sweep, LinearConfig};
//! use ds_gen::deterministic::grid;
//!
//! let g = grid(8, 3); // 8 columns of 3 nodes, swept left to right
//! let out = linear_sweep(&g.edge_list(), &LinearConfig {
//!     fragments: 4, ..Default::default()
//! }).unwrap();
//! assert!(out.fragmentation.fragmentation_graph().is_acyclic()); // §3.3 guarantee
//! ```

pub mod bond_energy;
pub mod center;
pub mod error;
pub mod frag_graph;
pub mod fragmentation;
pub mod linear;
pub mod metrics;
pub mod policy;
pub mod semantic;

pub use error::FragError;
pub use frag_graph::FragmentationGraph;
pub use fragmentation::{Fragment, FragmentId, Fragmentation};
pub use metrics::FragmentationMetrics;
pub use policy::CrossingPolicy;
