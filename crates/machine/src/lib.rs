//! # ds-machine — a simulated shared-nothing multiprocessor database machine
//!
//! The paper's experiments were destined for PRISMA/DB, a multi-processor
//! main-memory database machine (§5, refs [4], [14], [20]). This crate is
//! the stand-in documented in DESIGN.md: a coordinator plus one *site* per
//! fragment, each site an OS thread owning its fragment and complementary
//! information, communicating exclusively through message channels.
//!
//! The simulation preserves the property the disconnection set approach
//! is designed around — *no communication during phase one* — and makes
//! the communication that does happen measurable: every request/response
//! and every shipped tuple is counted in [`MachineStats`].
//!
//! ```
//! use ds_machine::Machine;
//! use ds_fragment::linear::{linear_sweep, LinearConfig};
//! use ds_gen::deterministic::grid;
//! use ds_graph::NodeId;
//!
//! let g = grid(8, 3);
//! let frag = linear_sweep(&g.edge_list(), &LinearConfig { fragments: 3, ..Default::default() })
//!     .unwrap()
//!     .fragmentation;
//! let mut machine = Machine::deploy(g.closure_graph(), frag, true).unwrap();
//! assert_eq!(machine.shortest_path(NodeId(0), NodeId(23)), Some(9));
//! let stats = machine.stats();
//! assert!(stats.messages_sent > 0);
//! machine.shutdown();
//! ```

pub mod protocol;
pub mod site;
pub mod stats;

use std::collections::HashMap;
use std::sync::mpsc;
use std::thread::JoinHandle;

use ds_closure::assemble;
use ds_closure::complementary::{ComplementaryInfo, ComplementaryScope};
use ds_closure::local::augmented_graph;
use ds_closure::planner::Planner;
use ds_closure::ClosureError;
use ds_fragment::Fragmentation;
use ds_graph::{Cost, CsrGraph, NodeId};
use ds_relation::Relation;

use protocol::{SiteRequest, SiteResponse};
pub use stats::{MachineStats, SiteStats};

/// The deployed machine: running site threads plus the coordinator state.
pub struct Machine {
    senders: Vec<mpsc::Sender<SiteRequest>>,
    responses: mpsc::Receiver<SiteResponse>,
    handles: Vec<JoinHandle<()>>,
    planner: Planner,
    stats: MachineStats,
    next_tag: u64,
}

impl Machine {
    /// Deploy one site per fragment. Precomputes complementary
    /// information (fragment-border scope) and ships each site its
    /// augmented local graph — after this, sites never see global state.
    pub fn deploy(
        graph: CsrGraph,
        frag: Fragmentation,
        symmetric: bool,
    ) -> Result<Self, ClosureError> {
        if graph.node_count() != frag.node_count() {
            return Err(ClosureError::NodeCountMismatch {
                graph: graph.node_count(),
                fragmentation: frag.node_count(),
            });
        }
        let comp = ComplementaryInfo::compute(
            &graph,
            &frag,
            ComplementaryScope::PerFragmentBorder,
            false,
        );
        let (resp_tx, responses) = mpsc::channel();
        let mut senders = Vec::with_capacity(frag.fragment_count());
        let mut handles = Vec::with_capacity(frag.fragment_count());
        for f in frag.fragments() {
            let aug = augmented_graph(
                graph.node_count(),
                f.edges(),
                symmetric,
                comp.shortcuts(f.id()),
            );
            let (req_tx, req_rx) = mpsc::channel();
            let tx = resp_tx.clone();
            let site_id = f.id();
            handles.push(std::thread::spawn(move || site::run_site(site_id, aug, req_rx, tx)));
            senders.push(req_tx);
        }
        let site_count = senders.len();
        let planner = Planner::new(&frag, 64, 16, None);
        Ok(Machine {
            senders,
            responses,
            handles,
            planner,
            stats: MachineStats::new(site_count),
            next_tag: 0,
        })
    }

    /// Number of sites (processors).
    pub fn site_count(&self) -> usize {
        self.senders.len()
    }

    /// Shortest-path cost from `x` to `y` (None = unreachable). All site
    /// subqueries of a chain are dispatched before any response is read —
    /// the sites genuinely work concurrently.
    pub fn shortest_path(&mut self, x: NodeId, y: NodeId) -> Option<Cost> {
        if x == y {
            return Some(0);
        }
        let plan = self.planner.plan(x, y).ok()?;
        let mut best: Option<Cost> = None;
        for chain in &plan.chains {
            // Dispatch phase: one message per site subquery.
            let mut tag_to_pos = HashMap::new();
            for (pos, q) in chain.queries.iter().enumerate() {
                let tag = self.next_tag;
                self.next_tag += 1;
                tag_to_pos.insert(tag, pos);
                self.stats.messages_sent += 1;
                self.senders[q.site]
                    .send(SiteRequest::SubQuery {
                        tag,
                        sources: q.sources.clone(),
                        targets: q.targets.clone(),
                    })
                    .expect("site thread alive");
            }
            // Collect phase: the final joins' communication.
            let mut segments: Vec<Option<Relation<ds_relation::PathTuple>>> =
                vec![None; chain.queries.len()];
            for _ in 0..chain.queries.len() {
                let resp = self.responses.recv().expect("site thread alive");
                self.stats.messages_received += 1;
                self.stats.tuples_shipped += resp.rows.len();
                let s = &mut self.stats.sites[resp.site];
                s.subqueries += 1;
                s.busy += resp.busy;
                s.tuples_produced += resp.rows.len();
                let pos = tag_to_pos[&resp.tag];
                segments[pos] = Some(Relation::from_rows("segment", resp.rows));
            }
            let segments: Vec<_> =
                segments.into_iter().map(|s| s.expect("every tag answered")).collect();
            if let Some(cost) = assemble::chain_cost(&segments, x, y) {
                best = Some(best.map_or(cost, |b: Cost| b.min(cost)));
            }
        }
        self.stats.queries += 1;
        best
    }

    /// Connection query.
    pub fn reachable(&mut self, x: NodeId, y: NodeId) -> bool {
        x == y || self.shortest_path(x, y).is_some()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Stop all site threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        for s in &self.senders {
            // Site may already be gone; ignore send failures on shutdown.
            let _ = s.send(SiteRequest::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_closure::baseline;
    use ds_fragment::linear::{linear_sweep, LinearConfig};
    use ds_gen::deterministic::grid;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn machine() -> (ds_gen::GeneratedGraph, Machine) {
        let g = grid(9, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig { fragments: 3, ..Default::default() },
        )
        .unwrap()
        .fragmentation;
        let m = Machine::deploy(g.closure_graph(), frag, true).unwrap();
        (g, m)
    }

    #[test]
    fn machine_matches_baseline() {
        let (g, mut m) = machine();
        let csr = g.closure_graph();
        for (x, y) in [(0u32, 35u32), (8, 27), (20, 3), (0, 0), (17, 18)] {
            assert_eq!(
                m.shortest_path(n(x), n(y)),
                baseline::shortest_path_cost(&csr, n(x), n(y)),
                "query {x}->{y}"
            );
        }
        m.shutdown();
    }

    #[test]
    fn stats_count_messages_and_tuples() {
        let (_, mut m) = machine();
        m.shortest_path(n(0), n(35));
        let s = m.stats();
        assert_eq!(s.queries, 1);
        assert_eq!(s.messages_sent, s.messages_received);
        assert!(s.messages_sent >= 3, "one per chain site");
        assert!(s.tuples_shipped > 0);
        let busy_sites = s.sites.iter().filter(|x| x.subqueries > 0).count();
        assert!(busy_sites >= 3);
        m.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (_, mut m) = machine();
        m.shutdown();
        m.shutdown();
    }

    #[test]
    fn site_count_matches_fragments() {
        let (_, m) = machine();
        assert_eq!(m.site_count(), 3);
    }

    #[test]
    fn reachability_via_machine() {
        let (_, mut m) = machine();
        assert!(m.reachable(n(0), n(35)));
        assert!(m.reachable(n(12), n(12)));
    }
}
