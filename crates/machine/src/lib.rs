// Supervised-tier hygiene: non-test code must not carry implicit panic
// points — site failures surface as `ClosureError::SiteUnavailable` or
// go through an explicit `unreachable!` with its invariant spelled out.
// CI promotes these to errors with -D warnings.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! # ds-machine — a simulated shared-nothing multiprocessor database machine
//!
//! The paper's experiments were destined for PRISMA/DB, a multi-processor
//! main-memory database machine (§5, refs [4], [14], [20]). This crate is
//! the stand-in documented in DESIGN.md: a coordinator plus one *site* per
//! fragment, each site an OS thread owning its fragment and complementary
//! information, communicating exclusively through message channels.
//!
//! The simulation preserves the property the disconnection set approach
//! is designed around — *no communication during phase one* — and makes
//! the communication that does happen measurable: every request/response
//! and every shipped tuple is counted in [`MachineStats`].
//!
//! [`Machine`] implements [`TcEngine`], the backend-polymorphic query
//! surface shared with the in-process `DisconnectionSetEngine`, and
//! deploys from the same build parts (`ds_closure::api::build_parts`) —
//! the two backends differ only in *where* phase one runs.
//!
//! ```
//! use ds_closure::TcEngine;
//! use ds_fragment::linear::{linear_sweep, LinearConfig};
//! use ds_gen::deterministic::grid;
//! use ds_graph::NodeId;
//! use ds_machine::Machine;
//!
//! let g = grid(8, 3);
//! let frag = linear_sweep(&g.edge_list(), &LinearConfig { fragments: 3, ..Default::default() })
//!     .unwrap()
//!     .fragmentation;
//! let mut machine = Machine::deploy(g.closure_graph(), frag, true).unwrap();
//! assert_eq!(machine.shortest_path(NodeId(0), NodeId(23)).cost, Some(9));
//! let stats = machine.stats();
//! assert!(stats.messages_sent > 0);
//! machine.shutdown();
//! ```

pub mod protocol;
pub mod site;
pub mod stats;

use std::collections::{BTreeSet, HashMap};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use ds_closure::api::{build_parts, run_batch, run_batch_traced, SiteEvaluator};
use ds_closure::complementary::ComplementaryInfo;
use ds_closure::planner::{ChainPlan, Planner};
use ds_closure::updates::maintain;
use ds_closure::ConnectivityEffect;
use ds_closure::{
    BatchAnswer, ClosureError, EngineConfig, EngineSnapshot, NetworkUpdate, PrecomputeStats,
    QueryAnswer, QueryRequest, QueryStats, Route, TcEngine, UpdateReport,
};
use ds_fragment::Fragmentation;
use ds_graph::{CsrGraph, NodeId, ReachIndex, ScratchDijkstra};
use ds_obs::{
    EvalTrace, Observability, RequestTrace, SpanRecord, Stage, TraceId, TraceOutcome, Tracer,
};
use ds_relation::{PathTuple, Relation};

pub use ds_fault::{FaultPlan, FaultPoint};
use protocol::{EdgeChange, SiteDelta, SiteRequest, SiteResponse};
use site::SiteInit;
pub use stats::{MachineStats, SiteStats};

/// Deployment knobs that are about the machine's *operation*, not the
/// closure algorithm (that is [`EngineConfig`]).
#[derive(Clone, Debug)]
pub struct MachineOptions {
    /// How long the coordinator waits on the response channel before
    /// declaring every site that still owes an answer dead and
    /// redeploying it. Generous by default: a healthy site answers in
    /// microseconds, so 10 s only ever fires on a genuinely dead thread.
    pub site_recv_timeout: Duration,
    /// Deterministic fault plan armed at every site thread. `None` (the
    /// default) reduces the hook to a single branch per message.
    pub fault: Option<Arc<FaultPlan>>,
    /// Observability bundle: when armed, every batch mints trace ids,
    /// stamps them through the site protocol, files per-request span
    /// sets, and mirrors [`MachineStats`] into the metrics registry.
    /// `None` (the default) reduces every hook to one `Option` branch.
    pub obs: Option<Arc<Observability>>,
}

impl Default for MachineOptions {
    fn default() -> Self {
        MachineOptions {
            site_recv_timeout: Duration::from_secs(10),
            fault: None,
            obs: None,
        }
    }
}

/// The deployed machine: running site threads plus the coordinator state.
///
/// The coordinator retains the global graph, fragmentation and
/// complementary information solely for update maintenance (running the
/// shared `maintain` path and deriving the deltas to ship); query
/// processing touches only the planner and the message channels — sites
/// never see global state.
pub struct Machine {
    graph: Arc<CsrGraph>,
    frag: Arc<Fragmentation>,
    symmetric: bool,
    cfg: EngineConfig,
    comp: ComplementaryInfo,
    senders: Vec<mpsc::Sender<SiteRequest>>,
    responses: mpsc::Receiver<SiteResponse>,
    /// Retained clone of the sites' response sender so a redeployed site
    /// can be handed the same channel. (Consequence: the response channel
    /// never disconnects, which is why every coordinator receive is a
    /// `recv_timeout`.)
    resp_tx: mpsc::Sender<SiteResponse>,
    handles: Vec<JoinHandle<()>>,
    /// Handles of replaced site threads; joined at shutdown. A replaced
    /// thread exits on its own once it observes its closed request
    /// channel (or already died — that is why it was replaced).
    retired: Vec<JoinHandle<()>>,
    options: MachineOptions,
    planner: Arc<Planner>,
    stats: MachineStats,
    next_tag: u64,
    /// Coordinator-side scratch kernel for update repair sweeps.
    scratch: ScratchDijkstra,
    /// Coordinator-side SCC/chain reachability index over the global
    /// graph — `connected` answers here without any site round trip.
    /// Kept across updates that provably cannot change reachability,
    /// rebuilt eagerly otherwise; shared with assembled snapshots.
    reach: Option<Arc<ReachIndex>>,
}

impl Machine {
    /// Deploy one site per fragment with the default engine
    /// configuration. Precomputes complementary information and ships
    /// each site its augmented local graph — after this, sites never see
    /// global state.
    pub fn deploy(
        graph: CsrGraph,
        frag: Fragmentation,
        symmetric: bool,
    ) -> Result<Self, ClosureError> {
        Self::deploy_with_config(graph, frag, symmetric, EngineConfig::default())
    }

    /// Deploy with an explicit [`EngineConfig`] (complementary scope,
    /// chain enumeration caps, PHE hub). `store_paths` is ignored: sites
    /// ship only cost tuples, so this backend cannot reconstruct routes.
    pub fn deploy_with_config(
        graph: CsrGraph,
        frag: Fragmentation,
        symmetric: bool,
        cfg: EngineConfig,
    ) -> Result<Self, ClosureError> {
        Self::deploy_with_options(graph, frag, symmetric, cfg, MachineOptions::default())
    }

    /// Deploy with explicit [`MachineOptions`] on top of the engine
    /// configuration: the dead-site detection timeout and an optional
    /// deterministic fault plan for chaos testing.
    pub fn deploy_with_options(
        graph: CsrGraph,
        frag: Fragmentation,
        symmetric: bool,
        cfg: EngineConfig,
        options: MachineOptions,
    ) -> Result<Self, ClosureError> {
        // Shared build path with the inline backend.
        let parts = build_parts(&graph, &frag, symmetric, &cfg)?;
        let inits: Vec<SiteInit> = frag
            .fragments()
            .iter()
            .map(|f| SiteInit {
                site: f.id(),
                node_count: graph.node_count(),
                symmetric,
                frag_edges: f.edges().to_vec(),
                shortcuts: parts.comp.shortcuts(f.id()).to_vec(),
            })
            .collect();
        let SpawnedSites {
            senders,
            responses,
            resp_tx,
            handles,
        } = spawn_sites(inits, &options.fault);
        let site_count = senders.len();
        let reach = cfg.reach_index.then(|| Arc::new(ReachIndex::build(&graph)));
        Ok(Machine {
            graph: Arc::new(graph),
            frag: Arc::new(frag),
            symmetric,
            cfg,
            comp: parts.comp,
            senders,
            responses,
            resp_tx,
            handles,
            retired: Vec::new(),
            options,
            planner: parts.planner,
            stats: MachineStats::new(site_count),
            next_tag: 0,
            scratch: ScratchDijkstra::new(),
            reach,
        })
    }

    /// Number of sites (processors).
    pub fn site_count(&self) -> usize {
        self.senders.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Stop all site threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        for s in &self.senders {
            // Site may already be gone; ignore send failures on shutdown.
            let _ = s.send(SiteRequest::Shutdown);
        }
        for h in self.handles.drain(..).chain(self.retired.drain(..)) {
            // A replaced or injected-panic thread joins with Err; the
            // failure was already handled when the site was redeployed.
            let _ = h.join();
        }
    }

    /// Redeploy one site from the coordinator's retained fragment and
    /// complementary state — the same [`SiteInit`] path as `deploy`, so
    /// the new thread is consistent with the coordinator by construction
    /// (including any update the dead site missed).
    fn respawn_site(&mut self, site: usize) {
        let f = self.frag.fragment(site);
        let init = SiteInit {
            site,
            node_count: self.graph.node_count(),
            symmetric: self.symmetric,
            frag_edges: f.edges().to_vec(),
            shortcuts: self.comp.shortcuts(site).to_vec(),
        };
        let (req_tx, req_rx) = mpsc::channel();
        let tx = self.resp_tx.clone();
        let fault = self.options.fault.clone();
        let handle = std::thread::spawn(move || site::run_site(init, req_rx, tx, fault));
        // Dropping the old sender tells a merely-slow (not dead) old
        // thread to exit; its late responses carry stale tags and are
        // discarded by the tag-driven collection loops.
        self.senders[site] = req_tx;
        self.retired
            .push(std::mem::replace(&mut self.handles[site], handle));
        self.stats.site_restarts += 1;
    }

    /// One evaluation round with typed failure: if any site dies (or
    /// stops answering for [`MachineOptions::site_recv_timeout`]) the
    /// whole batch is discarded, every suspect site is redeployed from
    /// the coordinator's retained state, and the first failed site is
    /// reported as [`ClosureError::SiteUnavailable`]. A retry after the
    /// error hits a healthy machine.
    pub fn try_query_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<BatchAnswer, ClosureError> {
        let obs = self.options.obs.clone();
        let traces: Vec<TraceId> = match &obs {
            Some(o) => requests.iter().map(|_| o.tracer().mint()).collect(),
            None => Vec::new(),
        };
        let batch_start_ns = obs.as_ref().map_or(0, |o| o.tracer().now_ns());
        let mut site_spans: Vec<SpanRecord> = Vec::new();
        let mut eval_traces: Vec<EvalTrace> = Vec::new();
        let mut failed: BTreeSet<usize> = BTreeSet::new();
        let Machine {
            ref planner,
            ref senders,
            ref responses,
            ref options,
            ref mut stats,
            ref mut next_tag,
            ..
        } = *self;
        let mut eval = ChannelEval {
            senders,
            responses,
            recv_timeout: options.site_recv_timeout,
            stats,
            next_tag,
            failed: &mut failed,
            current_trace: TraceId::NONE,
            trace_ctx: obs.as_ref().map(|o| TraceCtx {
                tracer: o.tracer(),
                spans: &mut site_spans,
            }),
        };
        let batch = match &obs {
            Some(_) => run_batch_traced(
                planner,
                &mut eval,
                requests,
                &traces,
                Some(&mut eval_traces),
            ),
            None => run_batch(planner, &mut eval, requests),
        };
        if let Some(&site) = failed.iter().next() {
            for &s in &failed {
                self.respawn_site(s);
            }
            self.mirror_stats();
            return Err(ClosureError::SiteUnavailable { site });
        }
        self.stats.queries += requests.len();
        if let Some(o) = &obs {
            for (i, req) in requests.iter().enumerate() {
                let et = &eval_traces[i];
                let mut spans = vec![SpanRecord {
                    trace: et.trace,
                    stage: Stage::Evaluation,
                    start_ns: batch_start_ns,
                    dur_ns: et.eval_ns,
                }];
                for c in &et.chains {
                    spans.push(SpanRecord {
                        trace: et.trace,
                        stage: Stage::ChainSegment { chain: c.chain },
                        start_ns: batch_start_ns,
                        dur_ns: c.ns,
                    });
                }
                spans.extend(site_spans.iter().filter(|s| s.trace == et.trace));
                o.record_request(RequestTrace {
                    trace: et.trace,
                    source: req.source.index() as u64,
                    target: req.target.index() as u64,
                    epoch: 0,
                    total_ns: et.eval_ns,
                    outcome: if batch.answers[i].cost.is_some() {
                        TraceOutcome::Answered
                    } else {
                        TraceOutcome::Unreachable
                    },
                    spans,
                });
            }
        }
        self.mirror_stats();
        Ok(batch)
    }

    /// Refresh the registry-backed view of [`MachineStats`] (no-op when
    /// observability is disarmed).
    fn mirror_stats(&self) {
        if let Some(o) = &self.options.obs {
            self.stats.mirror_into(o.registry());
        }
    }

    /// Single-request [`Machine::try_query_batch`].
    pub fn try_shortest_path(&mut self, x: NodeId, y: NodeId) -> Result<QueryAnswer, ClosureError> {
        let mut batch = self.try_query_batch(&[QueryRequest::new(x, y)])?;
        match batch.answers.pop() {
            Some(a) => Ok(a),
            None => unreachable!("run_batch returns one answer per request"),
        }
    }
}

/// The channel fabric of a freshly spawned site pool: per-site request
/// senders, the shared response channel, and the coordinator's retained
/// clone of its sender (respawned sites get a fresh clone, so the
/// channel never disconnects — dead sites are detected by timeout).
struct SpawnedSites {
    senders: Vec<mpsc::Sender<SiteRequest>>,
    responses: mpsc::Receiver<SiteResponse>,
    resp_tx: mpsc::Sender<SiteResponse>,
    handles: Vec<JoinHandle<()>>,
}

/// Spawn one site thread per fragment, each owning its [`SiteInit`].
fn spawn_sites(inits: Vec<SiteInit>, fault: &Option<Arc<FaultPlan>>) -> SpawnedSites {
    let (resp_tx, responses) = mpsc::channel();
    let mut senders = Vec::with_capacity(inits.len());
    let mut handles = Vec::with_capacity(inits.len());
    for init in inits {
        let (req_tx, req_rx) = mpsc::channel();
        let tx = resp_tx.clone();
        let plan = fault.clone();
        handles.push(std::thread::spawn(move || {
            site::run_site(init, req_rx, tx, plan)
        }));
        senders.push(req_tx);
    }
    SpawnedSites {
        senders,
        responses,
        resp_tx,
        handles,
    }
}

/// Site evaluation over the message channels: all requested subqueries of
/// a chain are dispatched before any response is read — the sites
/// genuinely work concurrently.
///
/// Failure handling: a send error (the site's request channel is closed
/// because its thread died) or a response timeout marks the suspect
/// site(s) in `failed` and stops evaluating — the remaining segments come
/// back empty and the coordinator discards the whole batch, redeploys the
/// failed sites and reports [`ClosureError::SiteUnavailable`]. Responses
/// whose tag matches no pending subquery are late answers from a
/// previously failed round (a slow-not-dead site that was replaced) and
/// are dropped.
struct ChannelEval<'a> {
    senders: &'a [mpsc::Sender<SiteRequest>],
    responses: &'a mpsc::Receiver<SiteResponse>,
    recv_timeout: Duration,
    stats: &'a mut MachineStats,
    next_tag: &'a mut u64,
    failed: &'a mut BTreeSet<usize>,
    /// Trace id of the request currently being evaluated (set by
    /// [`SiteEvaluator::begin_query`] on traced batches), stamped into
    /// every dispatched [`SiteRequest::SubQuery`].
    current_trace: TraceId,
    /// Armed on traced batches: collects one `SitePhaseOne` span per
    /// sub-query response, attributed by the echoed trace id.
    trace_ctx: Option<TraceCtx<'a>>,
}

/// The span-collection half of a traced batch.
struct TraceCtx<'a> {
    tracer: &'a Tracer,
    spans: &'a mut Vec<SpanRecord>,
}

impl SiteEvaluator for ChannelEval<'_> {
    fn eval_positions(
        &mut self,
        chain: &ChainPlan,
        positions: &[usize],
        qstats: &mut QueryStats,
    ) -> Vec<Relation<PathTuple>> {
        let mut segments: Vec<Option<Relation<PathTuple>>> = vec![None; positions.len()];
        // Once any site has failed the batch is doomed: skip dispatching.
        if self.failed.is_empty() {
            // Dispatch phase: one message per site subquery.
            let mut pending: HashMap<u64, (usize, usize)> = HashMap::with_capacity(positions.len());
            for (slot, &pos) in positions.iter().enumerate() {
                let q = &chain.queries[pos];
                let tag = *self.next_tag;
                *self.next_tag += 1;
                let req = SiteRequest::SubQuery {
                    tag,
                    trace: self.current_trace,
                    sources: q.sources.clone(),
                    targets: q.targets.clone(),
                };
                if self.senders[q.site].send(req).is_err() {
                    self.failed.insert(q.site);
                    break;
                }
                self.stats.messages_sent += 1;
                pending.insert(tag, (slot, q.site));
            }
            // Collect phase: the final joins' communication.
            while !pending.is_empty() && self.failed.is_empty() {
                match self.responses.recv_timeout(self.recv_timeout) {
                    Ok(SiteResponse::SubQuery(resp)) => {
                        let Some((slot, _)) = pending.remove(&resp.tag) else {
                            self.stats.stale_responses += 1;
                            continue;
                        };
                        self.stats.messages_received += 1;
                        self.stats.tuples_shipped += resp.rows.len();
                        let s = &mut self.stats.sites[resp.site];
                        s.subqueries += 1;
                        s.busy += resp.busy;
                        s.tuples_produced += resp.rows.len();
                        qstats.site_queries += 1;
                        qstats.tuples_shipped += resp.rows.len();
                        qstats.total_site_busy += resp.busy;
                        qstats.max_site_busy = qstats.max_site_busy.max(resp.busy);
                        if let Some(ctx) = &mut self.trace_ctx {
                            if resp.trace.is_traced() {
                                let busy_ns = resp.busy.as_nanos() as u64;
                                let now = ctx.tracer.now_ns();
                                ctx.spans.push(SpanRecord {
                                    trace: resp.trace,
                                    stage: Stage::SitePhaseOne {
                                        site: resp.site as u32,
                                    },
                                    start_ns: now.saturating_sub(busy_ns),
                                    dur_ns: busy_ns,
                                });
                            }
                        }
                        segments[slot] = Some(Relation::from_rows("segment", resp.rows));
                    }
                    Ok(SiteResponse::DeltaApplied { .. }) => {
                        // Late ack from a failed update round.
                        self.stats.stale_responses += 1;
                    }
                    Err(_) => {
                        // Timed out: every site still owing an answer is
                        // suspect. (The channel cannot disconnect — the
                        // coordinator retains a sender clone.)
                        self.failed.extend(pending.values().map(|&(_, site)| site));
                    }
                }
            }
        }
        // On failure the missing segments come back empty; the batch's
        // answers are discarded by the coordinator.
        segments
            .into_iter()
            .map(|s| s.unwrap_or_else(|| Relation::from_rows("segment", Vec::new())))
            .collect()
    }

    fn begin_query(&mut self, trace: TraceId) {
        self.current_trace = trace;
    }
}

impl TcEngine for Machine {
    fn backend_name(&self) -> &'static str {
        "site-threads"
    }

    fn site_count(&self) -> usize {
        self.senders.len()
    }

    fn fragmentation(&self) -> &Fragmentation {
        &self.frag
    }

    /// A single-request batch: same planning and dispatch path as
    /// [`TcEngine::query_batch`].
    fn shortest_path(&mut self, x: NodeId, y: NodeId) -> QueryAnswer {
        let mut batch = self.query_batch(&[QueryRequest::new(x, y)]);
        match batch.answers.pop() {
            Some(a) => a,
            None => unreachable!("run_batch returns one answer per request"),
        }
    }

    /// Sites ship only cost tuples, never concrete paths — route
    /// reconstruction is not available on this backend.
    fn route(&mut self, _x: NodeId, _y: NodeId) -> Result<Option<Route>, ClosureError> {
        Err(ClosureError::RoutesNotEnabled)
    }

    fn precompute_stats(&self) -> PrecomputeStats {
        self.comp.precompute_stats()
    }

    /// The coordinator retains everything a snapshot needs except the
    /// augmented graphs (those live at the sites); they are rebuilt from
    /// the complementary tables — cheap CSR assembly, no precompute. The
    /// graph, fragmentation, planner and shortcut tables are handed over
    /// as shared `Arc` handles, not copied.
    fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot::assemble(
            Arc::clone(&self.graph),
            Arc::clone(&self.frag),
            self.symmetric,
            self.cfg.clone(),
            self.comp.clone(),
            Arc::clone(&self.planner),
            self.reach.clone(),
            "site-threads",
        )
    }

    /// Coordinator-local: one comparison plus at most one binary search
    /// in the reachability index — no site round trip, no Dijkstra
    /// sweep. Falls back to a full shortest-path query when the index
    /// is disabled.
    fn connected(&mut self, x: NodeId, y: NodeId) -> bool {
        if x == y {
            return true;
        }
        if let Some(reach) = &self.reach {
            if x.index() < reach.node_count() && y.index() < reach.node_count() {
                return reach.reaches(x, y);
            }
        }
        self.shortest_path(x, y).cost.is_some()
    }

    /// Updates are incremental: the coordinator runs the shared
    /// maintenance path (`ds_closure::updates::maintain`) on its retained
    /// state, then ships one [`SiteDelta`] to each touched site — the
    /// owner gets the fragment edge change, every site whose shortcut
    /// table changed gets the refreshed tuples. Untouched sites see no
    /// message at all; site threads are never torn down, so accumulated
    /// statistics survive updates by construction.
    fn update(&mut self, update: &NetworkUpdate) -> Result<UpdateReport, ClosureError> {
        let m = maintain(
            &mut self.graph,
            &mut self.frag,
            self.symmetric,
            &self.cfg,
            &mut self.comp,
            update,
            &mut self.scratch,
        )?;
        // Keep-vs-rebuild for the coordinator's reachability index,
        // decided while `self.reach` still describes the pre-update
        // graph (same rules as `EngineSnapshot::maintain_cow`). The
        // rebuild is eager: site deltas below are the expensive part of
        // an update anyway, and `connected` stays round-trip-free.
        let keep = match m.connectivity {
            ConnectivityEffect::Unchanged => true,
            ConnectivityEffect::Inserted { src, dst } => self.reach.as_ref().is_some_and(|r| {
                r.reaches(src, dst) && (!self.symmetric || src == dst || r.reaches(dst, src))
            }),
            ConnectivityEffect::Removed { parallel_remains } => parallel_remains,
        };
        if !keep {
            self.reach = self
                .cfg
                .reach_index
                .then(|| Arc::new(ReachIndex::build(&self.graph)));
        }
        let Some(owner) = m.owner else {
            return Ok(m.report); // no-op removal: nothing to ship
        };
        let mut targets: BTreeSet<usize> = m.shortcut_sites.iter().copied().collect();
        targets.insert(owner);
        let mut failed: BTreeSet<usize> = BTreeSet::new();
        let mut pending: HashMap<u64, usize> = HashMap::with_capacity(targets.len());
        for &f in &targets {
            let tag = self.next_tag;
            self.next_tag += 1;
            let shortcuts = m
                .shortcut_sites
                .contains(&f)
                .then(|| self.comp.shortcuts(f).to_vec());
            let delta = SiteDelta {
                tag,
                edge_change: (f == owner).then_some(match *update {
                    NetworkUpdate::Insert { edge, .. } => EdgeChange::Insert(edge),
                    NetworkUpdate::Remove { src, dst, .. } => EdgeChange::Remove { src, dst },
                }),
                shortcuts,
            };
            let shipped = delta.shortcuts.as_ref().map_or(0, Vec::len);
            // Keep shipping to the remaining touched sites even after a
            // failure: a redeployed site is rebuilt from post-maintenance
            // state, but live sites only stay consistent via their delta.
            if self.senders[f].send(SiteRequest::Delta(delta)).is_err() {
                failed.insert(f);
                continue;
            }
            self.stats.update_tuples_shipped += shipped;
            self.stats.messages_sent += 1;
            self.stats.update_messages_sent += 1;
            pending.insert(tag, f);
        }
        while !pending.is_empty() {
            match self.responses.recv_timeout(self.options.site_recv_timeout) {
                Ok(SiteResponse::DeltaApplied { site, tag, busy }) => {
                    let Some(expected) = pending.remove(&tag) else {
                        self.stats.stale_responses += 1;
                        continue;
                    };
                    debug_assert_eq!(expected, site, "delta ack does not match a shipped delta");
                    self.stats.messages_received += 1;
                    let s = &mut self.stats.sites[site];
                    s.deltas_applied += 1;
                    s.busy += busy;
                }
                Ok(SiteResponse::SubQuery(_)) => {
                    // Late answer from a failed query round.
                    self.stats.stale_responses += 1;
                }
                Err(_) => {
                    failed.extend(pending.values().copied());
                    pending.clear();
                }
            }
        }
        self.stats.updates += 1;
        if let Some(&site) = failed.iter().next() {
            // The update IS applied: the coordinator maintained its own
            // state, live sites acked their deltas, and each redeployed
            // site is rebuilt from the already-maintained state. The
            // error reports that sites died (and were replaced) mid-round.
            for &s in &failed {
                self.respawn_site(s);
            }
            return Err(ClosureError::SiteUnavailable { site });
        }
        Ok(m.report)
    }

    /// The infallible trait surface retries [`Machine::try_query_batch`]:
    /// each failed attempt redeploys the dead sites, so a retry runs
    /// against a healthy machine (and injected fault rules are one-shot).
    /// Callers that want the typed error instead use `try_query_batch`.
    fn query_batch(&mut self, requests: &[QueryRequest]) -> BatchAnswer {
        let attempts = self.senders.len() + 1;
        let mut last = None;
        for _ in 0..attempts {
            match self.try_query_batch(requests) {
                Ok(batch) => return batch,
                Err(e) => last = Some(e),
            }
        }
        panic!(
            "machine: sites kept failing across {attempts} redeploy attempts: {}",
            match last {
                Some(e) => e.to_string(),
                None => unreachable!("at least one attempt ran"),
            }
        )
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_closure::baseline;
    use ds_fragment::linear::{linear_sweep, LinearConfig};
    use ds_gen::deterministic::grid;
    use ds_graph::Edge;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn machine() -> (ds_gen::GeneratedGraph, Machine) {
        let g = grid(9, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let m = Machine::deploy(g.closure_graph(), frag, true).unwrap();
        (g, m)
    }

    #[test]
    fn machine_matches_baseline() {
        let (g, mut m) = machine();
        let csr = g.closure_graph();
        for (x, y) in [(0u32, 35u32), (8, 27), (20, 3), (0, 0), (17, 18)] {
            assert_eq!(
                m.shortest_path(n(x), n(y)).cost,
                baseline::shortest_path_cost(&csr, n(x), n(y)),
                "query {x}->{y}"
            );
        }
        m.shutdown();
    }

    #[test]
    fn stats_count_messages_and_tuples() {
        let (_, mut m) = machine();
        m.shortest_path(n(0), n(35));
        let s = m.stats();
        assert_eq!(s.queries, 1);
        assert_eq!(s.messages_sent, s.messages_received);
        assert!(s.messages_sent >= 3, "one per chain site");
        assert!(s.tuples_shipped > 0);
        let busy_sites = s.sites.iter().filter(|x| x.subqueries > 0).count();
        assert!(busy_sites >= 3);
        m.shutdown();
    }

    #[test]
    fn answers_carry_chain_and_stats() {
        let (_, mut m) = machine();
        let a = m.shortest_path(n(0), n(35));
        assert!(a.cost.is_some());
        let chain = a.best_chain.expect("cross-grid chain");
        assert_eq!(
            chain.len(),
            3,
            "corner to corner crosses all 3 sweep fragments"
        );
        assert!(a.stats.site_queries >= 3);
        assert!(a.stats.tuples_shipped > 0);
        m.shutdown();
    }

    #[test]
    fn batch_amortizes_and_matches_singles() {
        let (g, mut m) = machine();
        let csr = g.closure_graph();
        let requests: Vec<QueryRequest> = (0..8u32)
            .map(|i| QueryRequest::new(n(i % 9), n(35 - (i * 3) % 9)))
            .collect();
        let batch = m.query_batch(&requests);
        assert_eq!(batch.answers.len(), requests.len());
        for (req, ans) in requests.iter().zip(&batch.answers) {
            assert_eq!(
                ans.cost,
                baseline::shortest_path_cost(&csr, req.source, req.target),
                "batch {}->{}",
                req.source,
                req.target
            );
        }
        assert!(
            batch.stats.plans_reused > 0,
            "same fragment pair appears repeatedly: {:?}",
            batch.stats
        );
        assert!(
            batch.stats.segments_reused > 0,
            "interior segments shared: {:?}",
            batch.stats
        );
        m.shutdown();
    }

    #[test]
    fn update_insert_keeps_answers_exact() {
        let (_, mut m) = machine();
        let before = m.shortest_path(n(0), n(35)).cost.unwrap();
        // A cheap diagonal inside fragment 0 shortens cross-grid routes.
        let f0 = m.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let report = m
            .update(&NetworkUpdate::Insert {
                edge: Edge::new(a, b, 1),
                owner: 0,
            })
            .unwrap();
        assert!(!report.full_recompute, "insert maintenance is incremental");
        assert!(report.sites_touched >= 1, "{report:?}");
        let after = m.shortest_path(n(0), n(35)).cost.unwrap();
        assert!(after <= before, "insertion cannot lengthen paths");
        let csr = m.graph.clone();
        assert_eq!(Some(after), baseline::shortest_path_cost(&csr, n(0), n(35)));
        m.shutdown();
    }

    #[test]
    fn update_remove_keeps_answers_exact() {
        let (_, mut m) = machine();
        let f1 = m.fragmentation().fragment(1).clone();
        let e = *f1
            .edges()
            .iter()
            .find(|e| {
                let frag = m.fragmentation();
                frag.fragments_of_node(e.src).len() < 2 || frag.fragments_of_node(e.dst).len() < 2
            })
            .expect("grid fragment has interior edges");
        let report = m
            .update(&NetworkUpdate::Remove {
                src: e.src,
                dst: e.dst,
                owner: 1,
            })
            .unwrap();
        assert!(
            !report.full_recompute,
            "interior grid edge repairs: {report:?}"
        );
        let csr = m.graph.clone();
        for (x, y) in [(0u32, 35u32), (8, 27), (20, 3)] {
            assert_eq!(
                m.shortest_path(n(x), n(y)).cost,
                baseline::shortest_path_cost(&csr, n(x), n(y)),
                "post-delete {x}->{y}"
            );
        }
        m.shutdown();
    }

    #[test]
    fn update_remove_missing_is_noop() {
        let (_, mut m) = machine();
        let report = m
            .update(&NetworkUpdate::Remove {
                src: n(0),
                dst: n(0),
                owner: 0,
            })
            .unwrap();
        assert!(!report.full_recompute);
        assert_eq!(report.sites_touched, 0);
        assert_eq!(m.stats().updates, 0, "no-op ships nothing");
        m.shutdown();
    }

    #[test]
    fn update_ships_deltas_only_to_touched_sites() {
        let (_, mut m) = machine();
        let sent_before = m.stats().messages_sent;
        let f0 = m.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let report = m
            .update(&NetworkUpdate::Insert {
                edge: Edge::new(a, b, 1),
                owner: 0,
            })
            .unwrap();
        let s = m.stats();
        assert_eq!(s.updates, 1);
        assert_eq!(s.messages_sent - sent_before, report.sites_touched);
        assert_eq!(s.update_messages_sent, report.sites_touched);
        assert_eq!(s.update_tuples_shipped, report.tuples_shipped);
        assert!(
            report.sites_touched <= m.site_count(),
            "never more deltas than sites"
        );
        let deltas: usize = s.sites.iter().map(|x| x.deltas_applied).sum();
        assert_eq!(deltas, report.sites_touched);
        m.shutdown();
    }

    #[test]
    fn routes_not_available_on_this_backend() {
        let (_, mut m) = machine();
        assert_eq!(
            m.route(n(0), n(5)).unwrap_err(),
            ClosureError::RoutesNotEnabled
        );
        m.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (_, mut m) = machine();
        m.shutdown();
        m.shutdown();
    }

    #[test]
    fn site_count_matches_fragments() {
        let (_, m) = machine();
        assert_eq!(m.site_count(), 3);
    }

    #[test]
    fn reachability_via_machine() {
        let (_, mut m) = machine();
        assert!(m.connected(n(0), n(35)));
        assert!(m.connected(n(12), n(12)));
    }

    #[test]
    fn armed_observability_traces_batches_and_mirrors_stats() {
        let g = grid(9, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let obs = Observability::armed();
        let mut m = Machine::deploy_with_options(
            g.closure_graph(),
            frag,
            true,
            EngineConfig::default(),
            MachineOptions {
                obs: Some(obs.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let reqs = [
            QueryRequest::new(n(0), n(35)),
            QueryRequest::new(n(3), n(30)),
        ];
        let batch = m.try_query_batch(&reqs).unwrap();
        assert!(batch.answers.iter().all(|a| a.cost.is_some()));

        let recent = obs.tracer().recent(10);
        assert_eq!(recent.len(), 2, "one RequestTrace per request");
        for rt in &recent {
            assert_eq!(rt.outcome, TraceOutcome::Answered);
            assert!(rt.span(Stage::Evaluation).is_some(), "{rt}");
            assert!(
                rt.spans
                    .iter()
                    .any(|s| matches!(s.stage, Stage::SitePhaseOne { .. })),
                "cross-fragment query must touch at least one site: {rt}"
            );
            assert!(rt
                .spans
                .iter()
                .any(|s| matches!(s.stage, Stage::ChainSegment { .. })));
        }
        let snap = obs.snapshot();
        assert_eq!(snap.gauge("machine_queries"), Some(2));
        assert!(snap.gauge("machine_messages_sent").unwrap_or(0) > 0);

        // Oracle: a disarmed machine answers identically.
        m.shutdown();
    }

    fn machine_with_fault(plan: FaultPlan) -> (ds_gen::GeneratedGraph, Machine) {
        let g = grid(9, 4);
        let frag = linear_sweep(
            &g.edge_list(),
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let m = Machine::deploy_with_options(
            g.closure_graph(),
            frag,
            true,
            EngineConfig::default(),
            MachineOptions {
                site_recv_timeout: Duration::from_millis(200),
                fault: Some(Arc::new(plan)),
                obs: None,
            },
        )
        .unwrap();
        (g, m)
    }

    #[test]
    fn dead_site_is_detected_and_redeployed() {
        // Site 1 panics on its first message: the coordinator times out,
        // reports the typed error, respawns the site — and the retry is
        // exact.
        let (g, mut m) =
            machine_with_fault(FaultPlan::new().panic_at(FaultPoint::MachineSite { site: 1 }, 1));
        let err = m.try_shortest_path(n(0), n(35)).unwrap_err();
        assert_eq!(err, ClosureError::SiteUnavailable { site: 1 });
        assert_eq!(m.stats().site_restarts, 1);
        let csr = g.closure_graph();
        assert_eq!(
            m.try_shortest_path(n(0), n(35)).unwrap().cost,
            baseline::shortest_path_cost(&csr, n(0), n(35)),
        );
        m.shutdown();
    }

    #[test]
    fn infallible_surface_retries_through_a_site_death() {
        // Same fault, but through the TcEngine surface: the internal
        // respawn + retry makes the failure invisible to the caller.
        let (g, mut m) =
            machine_with_fault(FaultPlan::new().fail_at(FaultPoint::MachineSite { site: 2 }, 1));
        let csr = g.closure_graph();
        assert_eq!(
            m.shortest_path(n(0), n(35)).cost,
            baseline::shortest_path_cost(&csr, n(0), n(35)),
        );
        assert_eq!(m.stats().site_restarts, 1);
        m.shutdown();
    }

    #[test]
    fn update_with_dead_site_redeploys_and_stays_consistent() {
        // Site 0 dies on its next message, which is the update's delta.
        let (_, mut m) =
            machine_with_fault(FaultPlan::new().panic_at(FaultPoint::MachineSite { site: 0 }, 1));
        let f0 = m.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let err = m
            .update(&NetworkUpdate::Insert {
                edge: Edge::new(a, b, 1),
                owner: 0,
            })
            .unwrap_err();
        assert!(matches!(err, ClosureError::SiteUnavailable { .. }));
        assert_eq!(m.stats().site_restarts, 1);
        // The update is applied everywhere: the redeployed site was
        // rebuilt from post-maintenance state. Answers stay exact.
        let csr = m.graph.clone();
        for (x, y) in [(0u32, 35u32), (8, 27), (20, 3)] {
            assert_eq!(
                m.shortest_path(n(x), n(y)).cost,
                baseline::shortest_path_cost(&csr, n(x), n(y)),
                "post-failover {x}->{y}"
            );
        }
        m.shutdown();
    }
}
