//! A site: one processor of the simulated database machine.
//!
//! A site owns its fragment edges and the shortcut table stored at it,
//! and derives its augmented local graph from them — so a [`SiteDelta`]
//! (an edge change and/or a refreshed shortcut table) can be applied
//! locally, without the coordinator reshipping the world. It never reads
//! shared state — the shared-nothing property is enforced by ownership:
//! `run_site` moves the [`SiteInit`] into the thread.

use std::sync::{mpsc, Arc};
use std::time::Instant;

use ds_closure::local::{augmented_graph, border_matrix_with};
use ds_fault::{FaultPlan, FaultPoint};
use ds_graph::{CsrGraph, Edge, ScratchDijkstra};

use crate::protocol::{EdgeChange, SiteDelta, SiteRequest, SiteResponse, SubQueryResult};

/// Everything a site owns: shipped once at deployment, mutated only by
/// deltas.
#[derive(Clone, Debug)]
pub struct SiteInit {
    pub site: usize,
    pub node_count: usize,
    /// Whether each fragment tuple stands for both travel directions.
    pub symmetric: bool,
    /// The site's fragment tuples.
    pub frag_edges: Vec<Edge>,
    /// The complementary shortcut tuples stored at this site.
    pub shortcuts: Vec<Edge>,
}

impl SiteInit {
    fn augmented(&self) -> CsrGraph {
        augmented_graph(
            self.node_count,
            &self.frag_edges,
            self.symmetric,
            &self.shortcuts,
        )
    }

    fn apply(&mut self, delta: &SiteDelta) {
        match delta.edge_change {
            Some(EdgeChange::Insert(edge)) => self.frag_edges.push(edge),
            Some(EdgeChange::Remove { src, dst }) => {
                let symmetric = self.symmetric;
                self.frag_edges.retain(|e| !e.connects(src, dst, symmetric));
            }
            None => {}
        }
        if let Some(shortcuts) = &delta.shortcuts {
            self.shortcuts = shortcuts.clone();
        }
    }
}

/// Site main loop. Returns when a `Shutdown` arrives or the request
/// channel closes.
///
/// The site owns one [`ScratchDijkstra`] for its whole lifetime: every
/// subquery message reuses its stamped arrays, so steady-state message
/// processing performs no per-query O(V) allocations.
pub fn run_site(
    mut state: SiteInit,
    requests: mpsc::Receiver<SiteRequest>,
    responses: mpsc::Sender<SiteResponse>,
    fault: Option<Arc<FaultPlan>>,
) {
    let mut augmented = state.augmented();
    let mut scratch = ScratchDijkstra::new();
    while let Ok(req) = requests.recv() {
        // Deterministic fault hook, counted per received message: `Panic`
        // unwinds the thread, `Fail` dies silently mid-protocol — either
        // way the coordinator sees a site that stopped answering.
        if ds_fault::fire(&fault, FaultPoint::MachineSite { site: state.site }) {
            return;
        }
        match req {
            SiteRequest::SubQuery {
                tag,
                trace,
                sources,
                targets,
            } => {
                let start = Instant::now();
                let rel = border_matrix_with(&augmented, &sources, &targets, &mut scratch);
                let resp = SiteResponse::SubQuery(SubQueryResult {
                    site: state.site,
                    tag,
                    trace,
                    rows: rel.rows().to_vec(),
                    busy: start.elapsed(),
                });
                if responses.send(resp).is_err() {
                    return; // coordinator gone
                }
            }
            SiteRequest::Delta(delta) => {
                let start = Instant::now();
                state.apply(&delta);
                augmented = state.augmented();
                let resp = SiteResponse::DeltaApplied {
                    site: state.site,
                    tag: delta.tag,
                    busy: start.elapsed(),
                };
                if responses.send(resp).is_err() {
                    return;
                }
            }
            SiteRequest::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::NodeId;
    use ds_obs::TraceId;

    fn init() -> SiteInit {
        SiteInit {
            site: 7,
            node_count: 3,
            symmetric: false,
            frag_edges: vec![
                Edge::unit(NodeId(0), NodeId(1)),
                Edge::unit(NodeId(1), NodeId(2)),
            ],
            shortcuts: vec![],
        }
    }

    fn expect_rows(resp: SiteResponse) -> SubQueryResult {
        match resp {
            SiteResponse::SubQuery(r) => r,
            other => panic!("expected subquery result, got {other:?}"),
        }
    }

    #[test]
    fn site_answers_and_shuts_down() {
        let (req_tx, req_rx) = mpsc::channel();
        let (resp_tx, resp_rx) = mpsc::channel();
        let h = std::thread::spawn(move || run_site(init(), req_rx, resp_tx, None));
        req_tx
            .send(SiteRequest::SubQuery {
                tag: 42,
                trace: TraceId::NONE,
                sources: vec![NodeId(0)],
                targets: vec![NodeId(2)],
            })
            .unwrap();
        let resp = expect_rows(resp_rx.recv().unwrap());
        assert_eq!(resp.site, 7);
        assert_eq!(resp.tag, 42);
        assert_eq!(resp.rows.len(), 1);
        assert_eq!(resp.rows[0].cost, 2);
        req_tx.send(SiteRequest::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn delta_rebuilds_the_augmented_graph() {
        let (req_tx, req_rx) = mpsc::channel();
        let (resp_tx, resp_rx) = mpsc::channel();
        let h = std::thread::spawn(move || run_site(init(), req_rx, resp_tx, None));
        // Remove 1 -> 2: node 2 becomes unreachable from 0.
        req_tx
            .send(SiteRequest::Delta(SiteDelta {
                tag: 1,
                edge_change: Some(EdgeChange::Remove {
                    src: NodeId(1),
                    dst: NodeId(2),
                }),
                shortcuts: None,
            }))
            .unwrap();
        match resp_rx.recv().unwrap() {
            SiteResponse::DeltaApplied { site, tag, .. } => {
                assert_eq!((site, tag), (7, 1));
            }
            other => panic!("expected delta ack, got {other:?}"),
        }
        req_tx
            .send(SiteRequest::SubQuery {
                tag: 2,
                trace: TraceId::NONE,
                sources: vec![NodeId(0)],
                targets: vec![NodeId(2)],
            })
            .unwrap();
        let resp = expect_rows(resp_rx.recv().unwrap());
        assert!(resp.rows.is_empty(), "edge removed, no path");
        // Ship a shortcut table instead: reachability returns.
        req_tx
            .send(SiteRequest::Delta(SiteDelta {
                tag: 3,
                edge_change: None,
                shortcuts: Some(vec![Edge::new(NodeId(0), NodeId(2), 9)]),
            }))
            .unwrap();
        resp_rx.recv().unwrap();
        req_tx
            .send(SiteRequest::SubQuery {
                tag: 4,
                trace: TraceId::NONE,
                sources: vec![NodeId(0)],
                targets: vec![NodeId(2)],
            })
            .unwrap();
        let resp = expect_rows(resp_rx.recv().unwrap());
        assert_eq!(resp.rows[0].cost, 9);
        req_tx.send(SiteRequest::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn site_exits_when_channel_closes() {
        let (req_tx, req_rx) = mpsc::channel::<SiteRequest>();
        let (resp_tx, _resp_rx) = mpsc::channel();
        let mut st = init();
        st.frag_edges.clear();
        let h = std::thread::spawn(move || run_site(st, req_rx, resp_tx, None));
        drop(req_tx);
        h.join().unwrap();
    }
}
