//! A site: one processor of the simulated database machine.
//!
//! A site owns its fragment (already augmented with the complementary
//! shortcuts stored at it) and serves subqueries until shut down. It
//! never reads shared state — the shared-nothing property is enforced by
//! ownership: `run_site` moves the augmented graph into the thread.

use std::sync::mpsc;
use std::time::Instant;

use ds_closure::local::border_matrix;
use ds_graph::CsrGraph;

use crate::protocol::{SiteRequest, SiteResponse};

/// Site main loop. Returns when a `Shutdown` arrives or the request
/// channel closes.
pub fn run_site(
    site: usize,
    augmented: CsrGraph,
    requests: mpsc::Receiver<SiteRequest>,
    responses: mpsc::Sender<SiteResponse>,
) {
    while let Ok(req) = requests.recv() {
        match req {
            SiteRequest::SubQuery {
                tag,
                sources,
                targets,
            } => {
                let start = Instant::now();
                let rel = border_matrix(&augmented, &sources, &targets);
                let resp = SiteResponse {
                    site,
                    tag,
                    rows: rel.rows().to_vec(),
                    busy: start.elapsed(),
                };
                if responses.send(resp).is_err() {
                    return; // coordinator gone
                }
            }
            SiteRequest::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_graph::{Edge, NodeId};

    #[test]
    fn site_answers_and_shuts_down() {
        let aug = CsrGraph::from_edges(
            3,
            &[
                Edge::unit(NodeId(0), NodeId(1)),
                Edge::unit(NodeId(1), NodeId(2)),
            ],
        );
        let (req_tx, req_rx) = mpsc::channel();
        let (resp_tx, resp_rx) = mpsc::channel();
        let h = std::thread::spawn(move || run_site(7, aug, req_rx, resp_tx));
        req_tx
            .send(SiteRequest::SubQuery {
                tag: 42,
                sources: vec![NodeId(0)],
                targets: vec![NodeId(2)],
            })
            .unwrap();
        let resp = resp_rx.recv().unwrap();
        assert_eq!(resp.site, 7);
        assert_eq!(resp.tag, 42);
        assert_eq!(resp.rows.len(), 1);
        assert_eq!(resp.rows[0].cost, 2);
        req_tx.send(SiteRequest::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn site_exits_when_channel_closes() {
        let aug = CsrGraph::from_edges(1, &[]);
        let (req_tx, req_rx) = mpsc::channel::<SiteRequest>();
        let (resp_tx, _resp_rx) = mpsc::channel();
        let h = std::thread::spawn(move || run_site(0, aug, req_rx, resp_tx));
        drop(req_tx);
        h.join().unwrap();
    }
}
