//! Machine-level accounting: the quantities the PRISMA experiments
//! (ref [14]) would have measured.

use std::time::Duration;

/// Per-site counters. All counters accumulate monotonically for the
/// lifetime of the machine — updates (delta messages) never reset them.
#[derive(Clone, Debug, Default)]
pub struct SiteStats {
    /// Subqueries served.
    pub subqueries: usize,
    /// Update deltas applied (edge changes / shortcut refreshes).
    pub deltas_applied: usize,
    /// Total processing time (subqueries + delta application).
    pub busy: Duration,
    /// Tuples produced (size of the shipped relations).
    pub tuples_produced: usize,
}

/// Whole-machine counters.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Queries answered by the coordinator.
    pub queries: usize,
    /// Network updates applied by the coordinator.
    pub updates: usize,
    /// Request messages coordinator → sites (subqueries and deltas).
    pub messages_sent: usize,
    /// Response messages sites → coordinator.
    pub messages_received: usize,
    /// Total tuples shipped back for the final joins — small by design:
    /// "These joins will have relatively small operands (since the
    /// disconnection sets are small)" (§2.1).
    pub tuples_shipped: usize,
    /// Delta messages shipped for updates (subset of `messages_sent`).
    pub update_messages_sent: usize,
    /// Shortcut tuples shipped in deltas (the update maintenance
    /// communication volume — compare against `tuples_shipped`).
    pub update_tuples_shipped: usize,
    /// Site threads redeployed by the coordinator after a death or
    /// response timeout (supervision; the machine keeps serving).
    pub site_restarts: usize,
    /// Responses discarded because their tag matched no pending request —
    /// late answers from rounds that already failed over.
    pub stale_responses: usize,
    /// Per-site breakdown.
    pub sites: Vec<SiteStats>,
}

impl MachineStats {
    /// Fresh counters for `site_count` sites.
    pub fn new(site_count: usize) -> Self {
        MachineStats {
            sites: vec![SiteStats::default(); site_count],
            ..Default::default()
        }
    }

    /// Imbalance measure: max site busy time over mean site busy time
    /// (1.0 = perfectly balanced). The workload-balance goal of §2.2 made
    /// measurable.
    pub fn balance_ratio(&self) -> f64 {
        let busies: Vec<Duration> = self.sites.iter().map(|s| s.busy).collect();
        balance_ratio(&busies)
    }
}

/// Imbalance of a set of busy times: max over mean of the non-idle
/// entries, 1.0 for a perfectly balanced (or fully idle) set. Shared by
/// [`MachineStats::balance_ratio`] (per-site busy) and the serve
/// subsystem's per-worker report.
pub fn balance_ratio(busies: &[Duration]) -> f64 {
    let busies: Vec<f64> = busies
        .iter()
        .map(|b| b.as_secs_f64())
        .filter(|&b| b > 0.0)
        .collect();
    if busies.is_empty() {
        return 1.0;
    }
    let max = busies.iter().cloned().fold(0.0, f64::max);
    let mean = busies.iter().sum::<f64>() / busies.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_ratio_of_equal_sites_is_one() {
        let mut s = MachineStats::new(2);
        s.sites[0].busy = Duration::from_millis(10);
        s.sites[1].busy = Duration::from_millis(10);
        assert!((s.balance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn balance_ratio_detects_skew() {
        let mut s = MachineStats::new(2);
        s.sites[0].busy = Duration::from_millis(30);
        s.sites[1].busy = Duration::from_millis(10);
        assert!(s.balance_ratio() > 1.4);
    }

    #[test]
    fn empty_machine_is_balanced() {
        assert_eq!(MachineStats::new(0).balance_ratio(), 1.0);
        assert_eq!(MachineStats::new(3).balance_ratio(), 1.0);
    }
}
