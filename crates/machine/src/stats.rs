//! Machine-level accounting: the quantities the PRISMA experiments
//! (ref [14]) would have measured.

use std::fmt;
use std::time::Duration;

/// Per-site counters. All counters accumulate monotonically for the
/// lifetime of the machine — updates (delta messages) never reset them.
#[derive(Clone, Debug, Default)]
pub struct SiteStats {
    /// Subqueries served.
    pub subqueries: usize,
    /// Update deltas applied (edge changes / shortcut refreshes).
    pub deltas_applied: usize,
    /// Total processing time (subqueries + delta application).
    pub busy: Duration,
    /// Tuples produced (size of the shipped relations).
    pub tuples_produced: usize,
}

/// Whole-machine counters.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Queries answered by the coordinator.
    pub queries: usize,
    /// Network updates applied by the coordinator.
    pub updates: usize,
    /// Request messages coordinator → sites (subqueries and deltas).
    pub messages_sent: usize,
    /// Response messages sites → coordinator.
    pub messages_received: usize,
    /// Total tuples shipped back for the final joins — small by design:
    /// "These joins will have relatively small operands (since the
    /// disconnection sets are small)" (§2.1).
    pub tuples_shipped: usize,
    /// Delta messages shipped for updates (subset of `messages_sent`).
    pub update_messages_sent: usize,
    /// Shortcut tuples shipped in deltas (the update maintenance
    /// communication volume — compare against `tuples_shipped`).
    pub update_tuples_shipped: usize,
    /// Site threads redeployed by the coordinator after a death or
    /// response timeout (supervision; the machine keeps serving).
    pub site_restarts: usize,
    /// Responses discarded because their tag matched no pending request —
    /// late answers from rounds that already failed over.
    pub stale_responses: usize,
    /// Per-site breakdown.
    pub sites: Vec<SiteStats>,
}

impl MachineStats {
    /// Fresh counters for `site_count` sites.
    pub fn new(site_count: usize) -> Self {
        MachineStats {
            sites: vec![SiteStats::default(); site_count],
            ..Default::default()
        }
    }

    /// Imbalance measure: max site busy time over mean site busy time
    /// (1.0 = perfectly balanced). The workload-balance goal of §2.2 made
    /// measurable.
    pub fn balance_ratio(&self) -> f64 {
        let busies: Vec<Duration> = self.sites.iter().map(|s| s.busy).collect();
        balance_ratio(&busies)
    }

    /// Mirror every counter into `registry` as `machine_*` gauges — the
    /// registry-backed view of this struct. Gauges (not counters)
    /// because the struct owns the truth and the registry reflects it;
    /// called by the coordinator after each batch/update.
    pub fn mirror_into(&self, registry: &ds_obs::MetricsRegistry) {
        registry.gauge("machine_queries").set(self.queries as u64);
        registry.gauge("machine_updates").set(self.updates as u64);
        registry
            .gauge("machine_messages_sent")
            .set(self.messages_sent as u64);
        registry
            .gauge("machine_messages_received")
            .set(self.messages_received as u64);
        registry
            .gauge("machine_tuples_shipped")
            .set(self.tuples_shipped as u64);
        registry
            .gauge("machine_update_messages_sent")
            .set(self.update_messages_sent as u64);
        registry
            .gauge("machine_update_tuples_shipped")
            .set(self.update_tuples_shipped as u64);
        registry
            .gauge("machine_site_restarts")
            .set(self.site_restarts as u64);
        registry
            .gauge("machine_stale_responses")
            .set(self.stale_responses as u64);
    }
}

impl fmt::Display for MachineStats {
    /// One-line summary, like `MaterializeStats`:
    /// `3 sites: 12 queries, 2 updates, 40/40 msgs, 118 tuples shipped
    /// (9 in deltas), balance 1.31, 0 restarts`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sites: {} queries, {} updates, {}/{} msgs, {} tuples shipped \
             ({} in deltas), balance {:.2}, {} restarts",
            self.sites.len(),
            self.queries,
            self.updates,
            self.messages_sent,
            self.messages_received,
            self.tuples_shipped,
            self.update_tuples_shipped,
            self.balance_ratio(),
            self.site_restarts,
        )?;
        if self.stale_responses > 0 {
            write!(f, ", {} stale responses", self.stale_responses)?;
        }
        Ok(())
    }
}

/// Imbalance of a set of busy times: max over mean of the non-idle
/// entries, 1.0 for a perfectly balanced (or fully idle) set. Shared by
/// [`MachineStats::balance_ratio`] (per-site busy) and the serve
/// subsystem's per-worker report.
pub fn balance_ratio(busies: &[Duration]) -> f64 {
    let busies: Vec<f64> = busies
        .iter()
        .map(|b| b.as_secs_f64())
        .filter(|&b| b > 0.0)
        .collect();
    if busies.is_empty() {
        return 1.0;
    }
    let max = busies.iter().cloned().fold(0.0, f64::max);
    let mean = busies.iter().sum::<f64>() / busies.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_ratio_of_equal_sites_is_one() {
        let mut s = MachineStats::new(2);
        s.sites[0].busy = Duration::from_millis(10);
        s.sites[1].busy = Duration::from_millis(10);
        assert!((s.balance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn balance_ratio_detects_skew() {
        let mut s = MachineStats::new(2);
        s.sites[0].busy = Duration::from_millis(30);
        s.sites[1].busy = Duration::from_millis(10);
        assert!(s.balance_ratio() > 1.4);
    }

    #[test]
    fn empty_machine_is_balanced() {
        assert_eq!(MachineStats::new(0).balance_ratio(), 1.0);
        assert_eq!(MachineStats::new(3).balance_ratio(), 1.0);
    }

    #[test]
    fn display_is_one_line_with_every_headline_number() {
        let mut s = MachineStats::new(3);
        s.queries = 12;
        s.updates = 2;
        s.messages_sent = 40;
        s.messages_received = 40;
        s.tuples_shipped = 118;
        s.update_tuples_shipped = 9;
        let line = s.to_string();
        assert!(!line.contains('\n'));
        for needle in [
            "3 sites",
            "12 queries",
            "2 updates",
            "40/40 msgs",
            "118 tuples",
        ] {
            assert!(line.contains(needle), "{line}");
        }
        assert!(!line.contains("stale"), "stale only shown when non-zero");
        s.stale_responses = 1;
        assert!(s.to_string().contains("1 stale"));
    }

    #[test]
    fn mirror_into_reflects_every_counter() {
        let reg = ds_obs::MetricsRegistry::new();
        let mut s = MachineStats::new(2);
        s.queries = 7;
        s.tuples_shipped = 99;
        s.mirror_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("machine_queries"), Some(7));
        assert_eq!(snap.gauge("machine_tuples_shipped"), Some(99));
        assert_eq!(snap.gauge("machine_site_restarts"), Some(0));
        // Mirroring again after progress overwrites, never accumulates.
        s.queries = 8;
        s.mirror_into(&reg);
        assert_eq!(reg.snapshot().gauge("machine_queries"), Some(8));
    }
}
