//! Coordinator ↔ site message protocol.
//!
//! The message kinds a PRISMA-style evaluation needs: a subquery request
//! (carrying the entry and exit disconnection sets — the "keyhole"
//! selections), its small result relation, and — since updates became
//! incremental — a *delta*: the owner fragment's edge change and/or a
//! refreshed shortcut table, shipped only to the sites the shared
//! maintenance path (`ds_closure::updates::maintain`) reports as touched.
//! Everything else (the fragment, the complementary information) was
//! shipped once at deployment.

use std::time::Duration;

use ds_graph::{Edge, NodeId};
use ds_obs::TraceId;
use ds_relation::PathTuple;

/// Coordinator → site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiteRequest {
    /// Evaluate border-to-border shortest paths on the site's augmented
    /// fragment.
    SubQuery {
        /// Correlation tag echoed in the response.
        tag: u64,
        /// Request trace id ([`TraceId::NONE`] when observability is
        /// disarmed), echoed in the response so per-site spans can be
        /// attributed to the originating request.
        trace: TraceId,
        sources: Vec<NodeId>,
        targets: Vec<NodeId>,
    },
    /// Apply an incremental update and rebuild the local augmented graph.
    Delta(SiteDelta),
    /// Terminate the site thread.
    Shutdown,
}

/// One site's share of a network update. At least one of the two payload
/// fields is present: the owner site gets the edge change; every site
/// whose shortcut table changed gets the refreshed tuples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteDelta {
    /// Correlation tag echoed in the acknowledgement.
    pub tag: u64,
    /// The fragment edge change, if this site owns the updated fragment.
    pub edge_change: Option<EdgeChange>,
    /// Replacement shortcut table, if this site's complementary
    /// information changed.
    pub shortcuts: Option<Vec<Edge>>,
}

/// The structural half of a delta, as the owner site applies it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeChange {
    /// Add this connection to the fragment.
    Insert(Edge),
    /// Drop every fragment connection `src -> dst` (and the reverse on
    /// symmetric sites).
    Remove { src: NodeId, dst: NodeId },
}

/// Site → coordinator.
#[derive(Clone, Debug)]
pub enum SiteResponse {
    /// The "very small relation" of phase one plus accounting.
    SubQuery(SubQueryResult),
    /// A delta was applied and the augmented graph rebuilt.
    DeltaApplied {
        site: usize,
        tag: u64,
        /// Time spent applying the delta and rebuilding.
        busy: Duration,
    },
}

/// Payload of [`SiteResponse::SubQuery`].
#[derive(Clone, Debug)]
pub struct SubQueryResult {
    pub site: usize,
    pub tag: u64,
    /// The request trace id from the triggering [`SiteRequest::SubQuery`].
    pub trace: TraceId,
    pub rows: Vec<PathTuple>,
    /// Processing time at the site (the workload-balance measure of
    /// §2.2).
    pub busy: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_compare() {
        let a = SiteRequest::SubQuery {
            tag: 1,
            trace: TraceId::NONE,
            sources: vec![NodeId(0)],
            targets: vec![],
        };
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, SiteRequest::Shutdown);
    }

    #[test]
    fn deltas_compare() {
        let d = SiteDelta {
            tag: 3,
            edge_change: Some(EdgeChange::Remove {
                src: NodeId(1),
                dst: NodeId(2),
            }),
            shortcuts: None,
        };
        assert_eq!(SiteRequest::Delta(d.clone()), SiteRequest::Delta(d));
    }
}
