//! Coordinator ↔ site message protocol.
//!
//! The only two message kinds a PRISMA-style evaluation needs: a
//! subquery request (carrying the entry and exit disconnection sets — the
//! "keyhole" selections) and its small result relation. Everything else
//! (the fragment, the complementary information) was shipped once at
//! deployment.

use std::time::Duration;

use ds_graph::NodeId;
use ds_relation::PathTuple;

/// Coordinator → site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiteRequest {
    /// Evaluate border-to-border shortest paths on the site's augmented
    /// fragment.
    SubQuery {
        /// Correlation tag echoed in the response.
        tag: u64,
        sources: Vec<NodeId>,
        targets: Vec<NodeId>,
    },
    /// Terminate the site thread.
    Shutdown,
}

/// Site → coordinator: the "very small relation" of phase one plus
/// accounting.
#[derive(Clone, Debug)]
pub struct SiteResponse {
    pub site: usize,
    pub tag: u64,
    pub rows: Vec<PathTuple>,
    /// Processing time at the site (the workload-balance measure of
    /// §2.2).
    pub busy: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_compare() {
        let a = SiteRequest::SubQuery {
            tag: 1,
            sources: vec![NodeId(0)],
            targets: vec![],
        };
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, SiteRequest::Shutdown);
    }
}
