//! The simulated multiprocessor machine must agree with the in-process
//! engine and the centralized baseline, and its accounting must reflect
//! the paper's communication story.

use discset::closure::baseline;
use discset::closure::engine::{DisconnectionSetEngine, EngineConfig};
use discset::fragment::{semantic, CrossingPolicy};
use discset::gen::{generate_transportation, TransportationConfig};
use discset::graph::NodeId;
use discset::machine::Machine;

fn setup(
    clusters: usize,
    seed: u64,
) -> (discset::graph::CsrGraph, discset::fragment::Fragmentation) {
    let cfg = TransportationConfig {
        clusters,
        nodes_per_cluster: 15,
        target_edges_per_cluster: 40,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, seed);
    let labels = g.cluster_of.clone().unwrap();
    let frag =
        semantic::by_labels(g.nodes, &g.connections, &labels, clusters, CrossingPolicy::LowerBlock)
            .unwrap();
    (g.closure_graph(), frag)
}

#[test]
fn machine_engine_and_baseline_agree() {
    let (csr, frag) = setup(4, 3);
    let engine =
        DisconnectionSetEngine::build(csr.clone(), frag.clone(), true, EngineConfig::default())
            .unwrap();
    let mut machine = Machine::deploy(csr.clone(), frag, true).unwrap();
    let n = csr.node_count() as u32;
    for i in 0..20u32 {
        let (x, y) = (NodeId((i * 7) % n), NodeId((i * 11 + 31) % n));
        let want = baseline::shortest_path_cost(&csr, x, y);
        assert_eq!(engine.shortest_path(x, y).cost, want, "engine {x}->{y}");
        assert_eq!(machine.shortest_path(x, y), want, "machine {x}->{y}");
    }
    machine.shutdown();
}

#[test]
fn machine_ships_only_small_relations() {
    let (csr, frag) = setup(4, 1);
    let ds_total: usize = frag.disconnection_sets().values().map(|v| v.len()).sum();
    let mut machine = Machine::deploy(csr, frag, true).unwrap();
    machine.shortest_path(NodeId(0), NodeId(59));
    let stats = machine.stats();
    // Each shipped relation is bounded by |entry DS| x |exit DS|; with the
    // few border nodes of a chain transportation graph that stays tiny.
    assert!(
        stats.tuples_shipped <= ds_total * ds_total + 2 * ds_total + 2,
        "tuples shipped {} vs DS total {}",
        stats.tuples_shipped,
        ds_total
    );
    assert_eq!(stats.messages_sent, stats.messages_received);
    machine.shutdown();
}

#[test]
fn machine_handles_many_queries_and_accumulates_stats() {
    let (csr, frag) = setup(3, 7);
    let mut machine = Machine::deploy(csr.clone(), frag, true).unwrap();
    let n = csr.node_count() as u32;
    let mut answered = 0;
    for i in 0..30u32 {
        let (x, y) = (NodeId(i % n), NodeId((i * 13 + 5) % n));
        if machine.shortest_path(x, y).is_some() {
            answered += 1;
        }
    }
    assert!(answered > 0);
    assert_eq!(machine.stats().queries, 30);
    let busy: Vec<_> = machine.stats().sites.iter().filter(|s| s.subqueries > 0).collect();
    assert!(!busy.is_empty(), "sites must have served subqueries");
    machine.shutdown();
}
