//! The simulated multiprocessor machine must agree with the in-process
//! engine and the centralized baseline, its accounting must reflect the
//! paper's communication story, and its batch path must amortize
//! planning exactly like the inline backend's.

use discset::closure::baseline;
use discset::closure::engine::{DisconnectionSetEngine, EngineConfig};
use discset::fragment::{semantic, CrossingPolicy};
use discset::gen::{generate_transportation, TransportationConfig};
use discset::graph::NodeId;
use discset::machine::Machine;
use discset::{QueryRequest, TcEngine};

fn setup(
    clusters: usize,
    seed: u64,
) -> (discset::graph::CsrGraph, discset::fragment::Fragmentation) {
    let cfg = TransportationConfig {
        clusters,
        nodes_per_cluster: 15,
        target_edges_per_cluster: 40,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, seed);
    let labels = g.cluster_of.clone().unwrap();
    let frag = semantic::by_labels(
        g.nodes,
        &g.connections,
        &labels,
        clusters,
        CrossingPolicy::LowerBlock,
    )
    .unwrap();
    (g.closure_graph(), frag)
}

#[test]
fn machine_engine_and_baseline_agree() {
    let (csr, frag) = setup(4, 3);
    let mut engine =
        DisconnectionSetEngine::build(csr.clone(), frag.clone(), true, EngineConfig::default())
            .unwrap();
    let mut machine = Machine::deploy(csr.clone(), frag, true).unwrap();
    // Both backends behind one trait-object slice: the code path every
    // experiment uses.
    let backends: [&mut dyn TcEngine; 2] = [&mut engine, &mut machine];
    let n = csr.node_count() as u32;
    for backend in backends {
        for i in 0..20u32 {
            let (x, y) = (NodeId((i * 7) % n), NodeId((i * 11 + 31) % n));
            let want = baseline::shortest_path_cost(&csr, x, y);
            assert_eq!(
                backend.shortest_path(x, y).cost,
                want,
                "{} {x}->{y}",
                backend.backend_name()
            );
        }
    }
    machine.shutdown();
}

#[test]
fn machine_ships_only_small_relations() {
    let (csr, frag) = setup(4, 1);
    let ds_total: usize = frag.disconnection_sets().values().map(|v| v.len()).sum();
    let mut machine = Machine::deploy(csr, frag, true).unwrap();
    machine.shortest_path(NodeId(0), NodeId(59));
    let stats = machine.stats();
    // Each shipped relation is bounded by |entry DS| x |exit DS|; with the
    // few border nodes of a chain transportation graph that stays tiny.
    assert!(
        stats.tuples_shipped <= ds_total * ds_total + 2 * ds_total + 2,
        "tuples shipped {} vs DS total {}",
        stats.tuples_shipped,
        ds_total
    );
    assert_eq!(stats.messages_sent, stats.messages_received);
    machine.shutdown();
}

#[test]
fn machine_handles_many_queries_and_accumulates_stats() {
    let (csr, frag) = setup(3, 7);
    let mut machine = Machine::deploy(csr.clone(), frag, true).unwrap();
    let n = csr.node_count() as u32;
    let mut answered = 0;
    for i in 0..30u32 {
        let (x, y) = (NodeId(i % n), NodeId((i * 13 + 5) % n));
        if machine.shortest_path(x, y).cost.is_some() {
            answered += 1;
        }
    }
    assert!(answered > 0);
    assert_eq!(machine.stats().queries, 30);
    let busy: Vec<_> = machine
        .stats()
        .sites
        .iter()
        .filter(|s| s.subqueries > 0)
        .collect();
    assert!(!busy.is_empty(), "sites must have served subqueries");
    machine.shutdown();
}

#[test]
fn stats_accumulate_across_updates() {
    // Regression: the old update path redeployed the machine, losing the
    // continuity of per-site accounting. With the delta protocol, site
    // threads survive updates, so every counter accumulates monotonically
    // — across incremental updates and fallback updates alike.
    use discset::graph::Edge;
    use discset::NetworkUpdate;
    let (csr, frag) = setup(3, 11);
    let mut m = Machine::deploy(csr.clone(), frag, true).unwrap();
    let n = csr.node_count() as u32;
    for i in 0..10u32 {
        m.shortest_path(NodeId(i % n), NodeId((i * 13 + 5) % n));
    }
    let before = m.stats().clone();
    assert!(before.messages_sent > 0);
    assert_eq!(before.updates, 0);

    // An incremental insert followed by its (incremental or fallback)
    // removal — both travel as deltas, never a teardown.
    let f0 = m.fragmentation().fragment(0).clone();
    let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
    let r1 = m
        .update(&NetworkUpdate::Insert {
            edge: Edge::new(a, b, 1),
            owner: 0,
        })
        .unwrap();
    assert!(!r1.full_recompute, "inserts are incremental: {r1:?}");
    let r2 = m
        .update(&NetworkUpdate::Remove {
            src: a,
            dst: b,
            owner: 0,
        })
        .unwrap();
    for i in 0..10u32 {
        m.shortest_path(NodeId((i * 3) % n), NodeId((i * 7 + 2) % n));
    }

    let after = m.stats();
    assert_eq!(after.queries, 20, "query counter accumulated");
    assert_eq!(after.updates, 2);
    assert_eq!(
        after.update_messages_sent,
        r1.sites_touched + r2.sites_touched
    );
    assert_eq!(
        after.update_tuples_shipped,
        r1.tuples_shipped + r2.tuples_shipped
    );
    assert_eq!(after.messages_sent, after.messages_received);
    let deltas: usize = after.sites.iter().map(|s| s.deltas_applied).sum();
    assert_eq!(deltas, r1.sites_touched + r2.sites_touched);
    // Per-site counters from before the updates are still there.
    for (i, (pre, post)) in before.sites.iter().zip(&after.sites).enumerate() {
        assert!(
            post.subqueries >= pre.subqueries,
            "site {i} lost subquery accounting"
        );
        assert!(post.busy >= pre.busy, "site {i} lost busy accounting");
        assert!(
            post.tuples_produced >= pre.tuples_produced,
            "site {i} lost tuple accounting"
        );
    }
    assert!(
        after.sites.iter().map(|s| s.subqueries).sum::<usize>()
            > before.sites.iter().map(|s| s.subqueries).sum::<usize>(),
        "post-update queries kept counting"
    );
    // Answers stay exact after the in-place updates.
    let now = {
        let connections: Vec<Edge> = m
            .fragmentation()
            .fragments()
            .iter()
            .flat_map(|f| f.edges().iter().copied())
            .collect();
        discset::graph::CsrGraph::from_edges(
            m.fragmentation().node_count(),
            &discset::gen::output::expand_connections(&connections, true),
        )
    };
    for i in 0..15u32 {
        let (x, y) = (NodeId((i * 5) % n), NodeId((i * 11 + 3) % n));
        assert_eq!(
            m.shortest_path(x, y).cost,
            baseline::shortest_path_cost(&now, x, y),
            "post-update {x}->{y}"
        );
    }
    m.shutdown();
}

#[test]
fn batch_saves_messages_over_single_queries() {
    // The communication argument for query_batch: interior segments are
    // shipped once per chain, not once per query.
    let (csr, frag) = setup(4, 5);
    let n = csr.node_count() as u32;
    let requests: Vec<QueryRequest> = (0..12u32)
        .map(|i| QueryRequest::new(NodeId(i % 8), NodeId(n - 1 - (i * 3) % 8)))
        .collect();

    let mut singles = Machine::deploy(csr.clone(), frag.clone(), true).unwrap();
    for req in &requests {
        singles.shortest_path(req.source, req.target);
    }
    let singles_sent = singles.stats().messages_sent;
    singles.shutdown();

    let mut batched = Machine::deploy(csr.clone(), frag, true).unwrap();
    let batch = batched.query_batch(&requests);
    let batched_sent = batched.stats().messages_sent;
    for (req, ans) in requests.iter().zip(&batch.answers) {
        assert_eq!(
            ans.cost,
            baseline::shortest_path_cost(&csr, req.source, req.target),
            "batch {}->{}",
            req.source,
            req.target
        );
    }
    assert!(
        batched_sent < singles_sent,
        "batch must ship fewer messages: {batched_sent} vs {singles_sent}"
    );
    assert!(batch.stats.plans_reused > 0, "{:?}", batch.stats);
    assert!(batch.stats.segments_reused > 0, "{:?}", batch.stats);
    batched.shutdown();
}
