//! End-to-end integration: every generator × every fragmenter × every
//! backend must answer every query exactly like the centralized
//! baseline. This is the paper's correctness contract: the disconnection
//! set approach computes the *same* transitive closure, just fragmented.
//!
//! All backends are driven through the `System` facade and the
//! backend-polymorphic `TcEngine` trait — one code path per experiment.

use discset::closure::baseline;
use discset::closure::engine::{DisconnectionSetEngine, EngineConfig};
use discset::closure::executor::ExecutionMode;
use discset::fragment::bond_energy::{bond_energy, BondEnergyConfig, SplitRule};
use discset::fragment::center::{center_based, CenterConfig, CenterSelection, Growth};
use discset::fragment::linear::{linear_sweep, LinearConfig};
use discset::fragment::{semantic, CrossingPolicy, Fragmentation};
use discset::gen::{
    generate_general, generate_transportation, GeneralConfig, GeneratedGraph, TransportationConfig,
};
use discset::graph::NodeId;
use discset::{Backend, Fragmenter, QueryRequest, System, TcEngine};

fn fragmenters(g: &GeneratedGraph) -> Vec<(&'static str, Fragmentation)> {
    let el = g.edge_list();
    let mut out = vec![(
        "center-based",
        center_based(
            &el,
            &CenterConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation,
    )];
    out.push((
        "center-smallest-first",
        center_based(
            &el,
            &CenterConfig {
                fragments: 3,
                growth: Growth::SmallestFirst,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation,
    ));
    out.push((
        "distributed-centers",
        center_based(
            &el,
            &CenterConfig {
                fragments: 3,
                selection: CenterSelection::Distributed { pool_factor: 6.0 },
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation,
    ));
    out.push((
        "bond-energy",
        bond_energy(
            &el,
            &BondEnergyConfig {
                split: SplitRule::CutQuantile(0.15),
                min_block_edges: 10,
                max_restarts: Some(6),
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation,
    ));
    out.push((
        "linear",
        linear_sweep(
            &el,
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation,
    ));
    if let Some(labels) = &g.cluster_of {
        let parts = (*labels.iter().max().unwrap() + 1) as usize;
        out.push((
            "semantic",
            semantic::by_labels(
                g.nodes,
                &g.connections,
                labels,
                parts,
                CrossingPolicy::Balance,
            )
            .unwrap(),
        ));
    }
    out
}

/// Every backend variant an experiment should cover, deployed through the
/// `System` facade from one fragmentation.
fn backends(g: &GeneratedGraph, frag: &Fragmentation) -> Vec<(&'static str, System)> {
    let mut out = Vec::new();
    for (name, backend, mode) in [
        ("inline-seq", Backend::Inline, ExecutionMode::Sequential),
        ("inline-par", Backend::Inline, ExecutionMode::Parallel),
        (
            "site-threads",
            Backend::SiteThreads,
            ExecutionMode::Sequential,
        ),
    ] {
        let sys = System::builder()
            .graph(g)
            .fragmenter(Fragmenter::Prebuilt(frag.clone()))
            .backend(backend)
            .config(EngineConfig {
                mode,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        out.push((name, sys));
    }
    out
}

fn check_graph(g: &GeneratedGraph, label: &str) {
    let csr = g.closure_graph();
    let n = g.nodes as u32;
    let queries: Vec<(NodeId, NodeId)> = (0..15u32)
        .map(|i| (NodeId((i * 13) % n), NodeId((i * 29 + n / 2) % n)))
        .collect();
    for (name, frag) in fragmenters(g) {
        frag.validate(&g.connections)
            .unwrap_or_else(|e| panic!("{label}/{name}: {e}"));
        for (backend, mut sys) in backends(g, &frag) {
            for &(x, y) in &queries {
                let got = sys.shortest_path(x, y).cost;
                let want = baseline::shortest_path_cost(&csr, x, y);
                assert_eq!(
                    got, want,
                    "{label}/{name}/{backend}: query {x}->{y} mismatch"
                );
                assert_eq!(sys.connected(x, y), want.is_some() || x == y);
            }
            // The batch path must agree with the single-query path.
            let requests: Vec<QueryRequest> = queries
                .iter()
                .map(|&(x, y)| QueryRequest::new(x, y))
                .collect();
            let batch = sys.query_batch(&requests);
            for (&(x, y), answer) in queries.iter().zip(&batch.answers) {
                assert_eq!(
                    answer.cost,
                    baseline::shortest_path_cost(&csr, x, y),
                    "{label}/{name}/{backend}: batch query {x}->{y} mismatch"
                );
            }
        }
    }
}

#[test]
fn transportation_graph_all_fragmenters_match_baseline() {
    let cfg = TransportationConfig {
        clusters: 3,
        nodes_per_cluster: 15,
        target_edges_per_cluster: 40,
        ..TransportationConfig::default()
    };
    for seed in 0..3 {
        check_graph(&generate_transportation(&cfg, seed), "transportation");
    }
}

#[test]
fn general_graph_all_fragmenters_match_baseline() {
    let cfg = GeneralConfig {
        nodes: 45,
        target_edges: 110,
        ..Default::default()
    };
    for seed in 0..3 {
        check_graph(&generate_general(&cfg, seed), "general");
    }
}

#[test]
fn ring_topology_cyclic_fragmentation_still_exact() {
    // The hard case: cyclic fragmentation graph, multi-chain enumeration.
    let cfg = TransportationConfig {
        clusters: 4,
        nodes_per_cluster: 12,
        target_edges_per_cluster: 30,
        topology: discset::gen::ClusterTopology::Ring,
        ..TransportationConfig::default()
    };
    for seed in 0..2 {
        let g = generate_transportation(&cfg, seed);
        let labels = g.cluster_of.clone().unwrap();
        let frag = semantic::by_labels(
            g.nodes,
            &g.connections,
            &labels,
            4,
            CrossingPolicy::LowerBlock,
        )
        .unwrap();
        assert!(
            !frag.fragmentation_graph().is_acyclic(),
            "ring must be cyclic"
        );
        let csr = g.closure_graph();
        for (backend, mut sys) in backends(&g, &frag) {
            for i in 0..12u32 {
                let (x, y) = (NodeId(i * 4 % 48), NodeId((i * 7 + 24) % 48));
                assert_eq!(
                    sys.shortest_path(x, y).cost,
                    baseline::shortest_path_cost(&csr, x, y),
                    "{backend}, seed {seed}, query {x}->{y}"
                );
            }
        }
    }
}

#[test]
fn routes_are_real_paths_across_fragmenters() {
    let cfg = TransportationConfig {
        clusters: 3,
        nodes_per_cluster: 12,
        target_edges_per_cluster: 30,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, 5);
    let csr = g.closure_graph();
    for (name, frag) in fragmenters(&g) {
        let mut sys = System::builder()
            .graph(&g)
            .fragmenter(Fragmenter::Prebuilt(frag))
            .backend(Backend::Inline)
            .config(EngineConfig {
                store_paths: true,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        for (x, y) in [(0u32, 35u32), (2, 30), (14, 20)] {
            let (x, y) = (NodeId(x), NodeId(y));
            let Some(route) = sys.route(x, y).unwrap() else {
                assert_eq!(baseline::shortest_path_cost(&csr, x, y), None);
                continue;
            };
            assert_eq!(
                Some(route.cost),
                baseline::shortest_path_cost(&csr, x, y),
                "{name}"
            );
            assert_eq!(route.nodes.first(), Some(&x));
            assert_eq!(route.nodes.last(), Some(&y));
            let mut total = 0;
            for hop in route.nodes.windows(2) {
                let c = csr
                    .neighbors(hop[0])
                    .filter(|(t, _)| *t == hop[1])
                    .map(|(_, c)| c)
                    .min()
                    .unwrap_or_else(|| panic!("{name}: fake hop {}->{}", hop[0], hop[1]));
                total += c;
            }
            assert_eq!(total, route.cost, "{name}: route cost mismatch");
        }
    }
}

#[test]
fn full_closure_equivalence_small_graph() {
    // Exhaustive all-pairs check against Floyd–Warshall on one graph.
    let cfg = GeneralConfig {
        nodes: 24,
        target_edges: 55,
        ..Default::default()
    };
    let g = generate_general(&cfg, 9);
    let csr = g.closure_graph();
    let fw = baseline::all_pairs(&csr);
    let frag = linear_sweep(
        &g.edge_list(),
        &LinearConfig {
            fragments: 3,
            ..Default::default()
        },
    )
    .unwrap()
    .fragmentation;
    let engine =
        DisconnectionSetEngine::build(csr.clone(), frag, true, EngineConfig::default()).unwrap();
    for x in csr.nodes() {
        for y in csr.nodes() {
            let want = discset::graph::matrix::fw_cost(&fw, x, y);
            assert_eq!(engine.shortest_path(x, y).cost, want, "{x}->{y}");
        }
    }
}

#[test]
fn per_ds_scope_never_underestimates() {
    // The paper's per-DS complementary scope is only guaranteed exact on
    // loosely connected fragmentations. On cyclic ones it may *miss*
    // cheaper routes (excursions returning through a different DS), but
    // it must never invent one: every shortcut is a real path cost, so
    // answers are sound upper bounds.
    use discset::closure::ComplementaryScope;
    let cfg = TransportationConfig {
        clusters: 4,
        nodes_per_cluster: 12,
        target_edges_per_cluster: 30,
        topology: discset::gen::ClusterTopology::Ring,
        ..TransportationConfig::default()
    };
    for seed in 0..3 {
        let g = generate_transportation(&cfg, seed);
        let labels = g.cluster_of.clone().unwrap();
        let frag = semantic::by_labels(
            g.nodes,
            &g.connections,
            &labels,
            4,
            CrossingPolicy::LowerBlock,
        )
        .unwrap();
        let csr = g.closure_graph();
        let engine = DisconnectionSetEngine::build(
            csr.clone(),
            frag,
            true,
            EngineConfig {
                scope: ComplementaryScope::PerDisconnectionSet,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for i in 0..16u32 {
            let (x, y) = (NodeId(i * 3 % 48), NodeId((i * 5 + 20) % 48));
            let got = engine.shortest_path(x, y).cost;
            let want = baseline::shortest_path_cost(&csr, x, y);
            match (got, want) {
                (Some(g_cost), Some(w_cost)) => {
                    assert!(
                        g_cost >= w_cost,
                        "underestimate at {x}->{y}: {g_cost} < {w_cost}"
                    )
                }
                (Some(_), None) => panic!("{x}->{y}: claimed a path where none exists"),
                // Missing a path is the allowed failure mode.
                (None, _) => {}
            }
        }
    }
}

#[test]
fn updates_stay_exact_on_every_backend() {
    use discset::graph::Edge;
    use discset::NetworkUpdate;
    let g = generate_transportation(
        &TransportationConfig {
            clusters: 3,
            nodes_per_cluster: 12,
            target_edges_per_cluster: 30,
            ..TransportationConfig::default()
        },
        2,
    );
    let labels = g.cluster_of.clone().unwrap();
    let frag = semantic::by_labels(
        g.nodes,
        &g.connections,
        &labels,
        3,
        CrossingPolicy::LowerBlock,
    )
    .unwrap();
    for (backend, mut sys) in backends(&g, &frag) {
        // Insert a cheap connection inside fragment 0 and check a
        // cross-network query against a fresh baseline on the updated
        // network.
        let f0 = sys.fragmentation().fragment(0).clone();
        let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
        let edge = Edge::new(a, b, 1);
        sys.update(&NetworkUpdate::Insert { edge, owner: 0 })
            .unwrap();
        let mut connections = g.connections.clone();
        connections.push(edge);
        let updated = discset::graph::CsrGraph::from_edges(
            g.nodes,
            &discset::gen::output::expand_connections(&connections, true),
        );
        for (x, y) in [(0u32, 35u32), (3, 30), (20, 8)] {
            let (x, y) = (NodeId(x), NodeId(y));
            assert_eq!(
                sys.shortest_path(x, y).cost,
                baseline::shortest_path_cost(&updated, x, y),
                "{backend}: post-update query {x}->{y}"
            );
        }
    }
}
