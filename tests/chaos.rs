//! Chaos property suite: deterministic seed-driven fault sweeps over
//! the three supervised tiers (serve pool, machine sites, bulk
//! materialization pool).
//!
//! Every scenario is derived from a seed by [`FaultScenario::from_seed`]
//! and armed through the same `ds_fault` hooks production code carries
//! disarmed, so a failing seed reproduces exactly. The properties under
//! test, for every seed:
//!
//! - **No hangs**: each scenario runs under a watchdog thread; a stuck
//!   request fails the test instead of wedging CI.
//! - **Every request completes**: each query/update either returns an
//!   answer or one of the *typed* errors the failure matrix allows for
//!   that scenario — never a panic in the caller, never a silent wrong
//!   answer.
//! - **Answers stay exact**: every successful answer matches a
//!   single-threaded Dijkstra oracle evaluated on the graph of the
//!   epoch the answer was served from.
//! - **Recovery**: after the fault plan is exhausted, the component has
//!   respawned (restart counters) and serves exact answers again. That
//!   now includes the serve writer: a panic respawns it from the last
//!   published snapshot (the in-flight update is reported as
//!   [`ClosureError::WriterRestarted`] and can be retried); only an
//!   injected *fail* rule degrades the pool to read-only, which the
//!   serve unit tests cover.
//!
//! The serve sweep additionally runs with an armed [`Observability`]
//! bundle shared across all seeds and dumps its metrics snapshot to
//! `target/chaos_metrics.json`, which CI uploads as an artifact — a
//! free profile of what the fault sweep actually exercised.

use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use discset::closure::{baseline, ClosureError, EngineConfig, TcEngine};
use discset::fragment::linear::{linear_sweep, LinearConfig};
use discset::gen::deterministic::grid;
use discset::graph::{Edge, NodeId};
use discset::machine::{Machine, MachineOptions};
use discset::relation::bulk::{MaterializeConfig, MaterializeEngine, MaterializeError};
use discset::relation::tc;
use discset::serve::{
    FaultPlan, FaultPoint, FaultScenario, FaultUniverse, ServeConfig, ServeError,
};
use discset::{Fragmenter, NetworkUpdate, Observability, System};

/// Run `f` on its own thread under a wall-clock watchdog. A scenario
/// that neither finishes nor panics within `secs` is reported as a hang
/// (the no-hang property is itself under test); a panicking scenario is
/// propagated with its original payload.
fn with_watchdog<F: FnOnce() + Send + 'static>(name: String, secs: u64, f: F) {
    let (done_tx, done_rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => handle.join().expect("scenario thread"),
        // Sender dropped without sending: the scenario panicked.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{name}: hang detected — scenario still running after {secs}s watchdog")
        }
    }
}

/// SplitMix64, so the traffic is as reproducible as the fault plan.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn n(i: u64, nodes: u64) -> NodeId {
    NodeId((i % nodes) as u32)
}

// ---------------------------------------------------------------- serve

/// One serve-tier scenario: a 1-worker pool over a 9×4 grid fragmented
/// three ways, driven by 120 sequential operations (an update every
/// 10th, toggling a fragment-0 shortcut). Single worker + sequential
/// traffic make the fault's nth-occurrence counters line up with the
/// operation sequence, so each seed is fully deterministic.
fn serve_chaos(seed: u64, obs: Arc<Observability>) {
    let universe = FaultUniverse {
        workers: 1,
        sites: 0, // no machine in this scenario: seed%4==1 falls back to WriterKill
        fragments: 0,
    };
    let scenario = FaultScenario::from_seed(seed, &universe);
    let plan = Arc::new(scenario.plan(&universe));

    let g = grid(9, 4);
    let nodes = g.nodes as u64;
    let sys = System::builder()
        .graph(&g)
        .fragmenter(Fragmenter::Linear(LinearConfig {
            fragments: 3,
            ..Default::default()
        }))
        .build()
        .expect("valid grid system");
    let mut cfg = ServeConfig::with_workers(1);
    cfg.fault = Some(plan.clone());
    cfg.obs = Some(obs);
    let server = sys.serve_with(cfg);

    // Per-epoch oracle: the graph behind every epoch ever published.
    // Answers may be served from an older epoch than the current one;
    // they must match the oracle *for their own epoch*.
    let mut epochs: BTreeMap<u64, _> = BTreeMap::new();
    epochs.insert(server.epoch(), server.snapshot().graph().clone());

    let f0 = server.snapshot().fragmentation().fragment(0).clone();
    let (a, b) = (
        f0.nodes()[0],
        *f0.nodes().last().expect("non-empty fragment"),
    );

    let mut rng = seed ^ 0xC4A5;
    let mut toggle_in = true;
    let mut worker_failures = 0u32;
    let mut writer_failures = 0u32;
    let mut ok_reads_after_writer_restart = 0u32;
    let mut ok_updates_after_writer_restart = 0u32;
    for op in 0..120u32 {
        if op % 10 == 9 {
            let update = if toggle_in {
                NetworkUpdate::Insert {
                    edge: Edge::new(a, b, 1),
                    owner: 0,
                }
            } else {
                NetworkUpdate::Remove {
                    src: a,
                    dst: b,
                    owner: 0,
                }
            };
            match server.update(&update) {
                Ok(served) => {
                    toggle_in = !toggle_in;
                    epochs.insert(served.epoch, server.snapshot().graph().clone());
                    if writer_failures > 0 {
                        ok_updates_after_writer_restart += 1;
                    }
                }
                // The writer died mid-publication and was respawned from
                // the last published snapshot; the in-flight update was
                // lost (toggle_in stays put) and is retried next round.
                Err(ClosureError::WriterRestarted) => writer_failures += 1,
                Err(e) => panic!("seed {seed}: unexpected update error {e}"),
            }
            continue;
        }
        let (x, y) = (n(splitmix(&mut rng), nodes), n(splitmix(&mut rng), nodes));
        match server.query(x, y) {
            Ok(served) => {
                let (epoch, graph) = epochs
                    .range(..=served.epoch)
                    .next_back()
                    .expect("answer epoch was published");
                assert_eq!(
                    served.answer.cost,
                    baseline::shortest_path_cost(graph, x, y),
                    "seed {seed}: op {op} ({x:?} -> {y:?}) diverged from the epoch-{epoch} oracle"
                );
                if writer_failures > 0 {
                    ok_reads_after_writer_restart += 1;
                }
            }
            Err(ServeError::Request(ClosureError::WorkerFailed)) => worker_failures += 1,
            Err(e) => panic!("seed {seed}: unexpected query error {e}"),
        }
    }

    let stats = server.shutdown();
    match scenario {
        FaultScenario::WorkerPanic { .. } => {
            assert!(plan.exhausted(), "seed {seed}: fault never fired");
            assert!(
                worker_failures >= 1,
                "seed {seed}: no doomed batch observed"
            );
            assert!(
                stats.worker_restarts >= 1,
                "seed {seed}: no supervisor respawn"
            );
            assert!(
                !stats.degraded,
                "seed {seed}: worker death must not degrade writes"
            );
        }
        FaultScenario::WriterKill { .. } => {
            assert!(plan.exhausted(), "seed {seed}: fault never fired");
            assert!(
                writer_failures >= 1,
                "seed {seed}: no WriterRestarted observed"
            );
            assert!(
                stats.writer_restarts >= 1,
                "seed {seed}: no supervisor respawn"
            );
            assert!(
                !stats.degraded,
                "seed {seed}: a writer panic must respawn, not degrade"
            );
            assert!(
                ok_reads_after_writer_restart >= 1,
                "seed {seed}: reads must keep serving across the restart"
            );
            assert!(
                ok_updates_after_writer_restart >= 1,
                "seed {seed}: updates must resume after the respawn"
            );
            assert_eq!(worker_failures, 0, "seed {seed}: readers are unaffected");
        }
        FaultScenario::DelayStorm { .. } => {
            assert_eq!(
                worker_failures, 0,
                "seed {seed}: delays must not fail requests"
            );
            assert_eq!(
                writer_failures, 0,
                "seed {seed}: delays must not fail updates"
            );
            assert_eq!(stats.worker_restarts, 0, "seed {seed}");
            assert!(!stats.degraded, "seed {seed}");
        }
        FaultScenario::SiteKill { .. } => unreachable!("universe has no sites"),
    }
}

#[test]
fn serve_chaos_seed_sweep() {
    // One armed bundle across the whole sweep: the aggregate metrics
    // profile what the chaos run exercised (restarts, sheds, epochs).
    let obs = Observability::armed();
    // ≥ 4 consecutive seeds covers every scenario kind (worker panic,
    // writer kill, delay storm — seed%4==1 maps to WriterKill here).
    for seed in 0..8u64 {
        let o = Arc::clone(&obs);
        with_watchdog(format!("serve seed {seed}"), 120, move || {
            serve_chaos(seed, o)
        });
    }
    let snap = obs.snapshot();
    assert!(snap.counter("serve_writer_restarts").unwrap_or(0) >= 1);
    assert!(snap.counter("serve_worker_restarts").unwrap_or(0) >= 1);
    assert!(snap.counter("serve_requests").unwrap_or(0) >= 8 * 100);
    let out = std::path::Path::new("target").join("chaos_metrics.json");
    if let Err(e) = std::fs::write(&out, snap.to_json()) {
        eprintln!("could not write {}: {e}", out.display());
    }
}

// -------------------------------------------------------------- machine

/// One machine-tier scenario: 3 site threads over the fragmented grid,
/// a short dead-site timeout, 16 queries, then an update, then a
/// post-recovery exactness sweep. Odd seeds only: seed%4 ∈ {1, 3} maps
/// to SiteKill / DelayStorm, the two scenarios with machine components.
fn machine_chaos(seed: u64) {
    let universe = FaultUniverse {
        workers: 0,
        sites: 3,
        fragments: 0,
    };
    let scenario = FaultScenario::from_seed(seed, &universe);
    let plan = Arc::new(scenario.plan(&universe));

    let g = grid(9, 4);
    let nodes = g.nodes as u64;
    let oracle = g.closure_graph();
    let frag = linear_sweep(
        &g.edge_list(),
        &LinearConfig {
            fragments: 3,
            ..Default::default()
        },
    )
    .expect("grid sweep")
    .fragmentation;
    let mut m = Machine::deploy_with_options(
        g.closure_graph(),
        frag,
        true,
        EngineConfig::default(),
        MachineOptions {
            site_recv_timeout: Duration::from_millis(300),
            fault: Some(plan.clone()),
            ..Default::default()
        },
    )
    .expect("valid deployment");

    let mut rng = seed ^ 0x51735;
    let mut site_failures = 0u32;
    for op in 0..16u32 {
        let (x, y) = (n(splitmix(&mut rng), nodes), n(splitmix(&mut rng), nodes));
        match m.try_shortest_path(x, y) {
            Ok(answer) => assert_eq!(
                answer.cost,
                baseline::shortest_path_cost(&oracle, x, y),
                "seed {seed}: op {op} ({x:?} -> {y:?}) diverged from the oracle"
            ),
            Err(ClosureError::SiteUnavailable { site }) => {
                assert!(site < 3, "seed {seed}: phantom site {site}");
                site_failures += 1;
            }
            Err(e) => panic!("seed {seed}: unexpected query error {e}"),
        }
    }

    // One update through the possibly-wounded machine. Even when it
    // reports SiteUnavailable the update IS applied — failed sites are
    // redeployed from the coordinator's post-maintenance state.
    let f0 = m.fragmentation().fragment(0).clone();
    let (a, b) = (
        f0.nodes()[0],
        *f0.nodes().last().expect("non-empty fragment"),
    );
    match m.update(&NetworkUpdate::Insert {
        edge: Edge::new(a, b, 1),
        owner: 0,
    }) {
        Ok(_) => {}
        Err(ClosureError::SiteUnavailable { .. }) => site_failures += 1,
        Err(e) => panic!("seed {seed}: unexpected update error {e}"),
    }
    let updated = m.snapshot().graph().clone();

    // Post-recovery: the plan's one-shot rules are spent, so every
    // query must now succeed and agree with the post-update oracle.
    for op in 0..8u32 {
        let (x, y) = (n(splitmix(&mut rng), nodes), n(splitmix(&mut rng), nodes));
        let answer = m
            .try_shortest_path(x, y)
            .unwrap_or_else(|e| panic!("seed {seed}: post-recovery query failed: {e}"));
        assert_eq!(
            answer.cost,
            baseline::shortest_path_cost(&updated, x, y),
            "seed {seed}: post-recovery op {op} ({x:?} -> {y:?}) diverged"
        );
    }

    match scenario {
        FaultScenario::SiteKill { .. } => {
            assert!(plan.exhausted(), "seed {seed}: fault never fired");
            assert!(
                site_failures >= 1,
                "seed {seed}: no SiteUnavailable observed"
            );
            assert!(
                m.stats().site_restarts >= 1,
                "seed {seed}: dead site was never redeployed"
            );
        }
        FaultScenario::DelayStorm { .. } => {
            // ≤ 10 ms per delayed message, well under the 300 ms dead-site
            // timeout: slowness alone must never trip failover.
            assert_eq!(site_failures, 0, "seed {seed}: delays tripped failover");
            assert_eq!(m.stats().site_restarts, 0, "seed {seed}");
        }
        other => unreachable!("odd seeds with sites never map to {other:?}"),
    }
}

#[test]
fn machine_chaos_seed_sweep() {
    // Odd seeds alternate SiteKill (1 mod 4) and DelayStorm (3 mod 4).
    for seed in [1u64, 3, 5, 7, 9, 11] {
        with_watchdog(format!("machine seed {seed}"), 120, move || {
            machine_chaos(seed)
        });
    }
}

// ----------------------------------------------------------------- bulk

/// One bulk-tier scenario: a worker dies (panic or silent exit) on one
/// fragment of the 3-way grid partition. The run must abort with the
/// typed error and clean joins; a retry on the same engine (the rule is
/// one-shot) must converge to the exact semi-naive closure.
fn bulk_chaos(seed: u64) {
    let g = grid(9, 4);
    let frag = linear_sweep(
        &g.edge_list(),
        &LinearConfig {
            fragments: 3,
            ..Default::default()
        },
    )
    .expect("grid sweep")
    .fragmentation;

    let fragment = (seed % 3) as usize;
    let point = FaultPoint::BulkWorker { fragment };
    let plan = if seed.is_multiple_of(2) {
        FaultPlan::new().panic_at(point, 1)
    } else {
        FaultPlan::new().fail_at(point, 1)
    };
    // Even seeds exercise the thread pool, odd seeds the inline driver:
    // the isolation contract is mode-independent.
    let threads = if seed.is_multiple_of(2) { 2 } else { 1 };
    let engine = MaterializeEngine::from_fragmentation(
        &frag,
        true,
        MaterializeConfig {
            threads,
            fault: Some(Arc::new(plan)),
            ..Default::default()
        },
    );

    let err = engine.materialize().expect_err("armed run must abort");
    assert_eq!(
        err,
        MaterializeError::WorkerPanicked { fragment },
        "seed {seed}"
    );

    // Clean joins + one-shot rule: the same engine retries to the exact
    // fixpoint.
    let (bulk, _) = engine
        .materialize()
        .unwrap_or_else(|e| panic!("seed {seed}: retry after abort failed: {e}"));
    let (seq, _) = tc::seminaive_closure(&engine.partition().union_relation(), None);
    assert_eq!(bulk.rows(), seq.rows(), "seed {seed}: retry diverged");
}

#[test]
fn bulk_chaos_seed_sweep() {
    for seed in 0..6u64 {
        with_watchdog(format!("bulk seed {seed}"), 120, move || bulk_chaos(seed));
    }
}

// ----------------------------------------------------------- durability

/// One durable-serve kill-and-restart scenario: a WAL-backed server
/// over the 9×4 grid absorbs 18 distinct-edge inserts while a
/// seed-derived disk fault fires at an arbitrary occurrence of one of
/// the durability fault points (torn append, failed append, failed
/// sync, torn/failed checkpoint, writer panic at the append hook —
/// `seed % 5`). The server is then shut down and the directory
/// recovered cold: the recovered engine must answer identically to a
/// Dijkstra oracle over the *surviving update prefix* — the acked
/// inserts, plus at most the ONE ambiguous in-flight insert a writer
/// panic may or may not have durably logged.
fn durable_chaos(seed: u64, dir: &std::path::Path) {
    use discset::closure::DisconnectionSetEngine;
    use discset::graph::CsrGraph;
    use discset::serve::DurabilityConfig;

    const UPDATES: u64 = 18;
    let mut rng = seed ^ 0xD00D;
    // Fault occurrence 2..=UPDATES-1: never the attach-time checkpoint
    // (occurrence 1 of CheckpointWrite), and never the last append —
    // at least one post-fault operation exercises repair-and-continue.
    let nth = 2 + splitmix(&mut rng) % (UPDATES - 2);
    let kind = seed % 5;
    let plan = Arc::new(match kind {
        0 => FaultPlan::new().torn_at(
            FaultPoint::WalAppend,
            nth,
            (splitmix(&mut rng) % 24) as usize,
        ),
        1 => FaultPlan::new().fail_at(FaultPoint::WalAppend, nth),
        2 => FaultPlan::new().fail_at(FaultPoint::WalSync, nth),
        // Occurrence 2 is the first *threshold* checkpoint (after the
        // 8th applied update; occurrence 1 was written at attach).
        3 => {
            if seed.is_multiple_of(2) {
                FaultPlan::new().torn_at(FaultPoint::CheckpointWrite, 2, 32)
            } else {
                FaultPlan::new().fail_at(FaultPoint::CheckpointWrite, 2)
            }
        }
        _ => FaultPlan::new().panic_at(FaultPoint::WalAppend, nth),
    });

    let g = grid(9, 4);
    let nodes = g.nodes as u64;
    let sys = System::builder()
        .graph(&g)
        .fragmenter(Fragmenter::Linear(LinearConfig {
            fragments: 3,
            ..Default::default()
        }))
        .build()
        .expect("valid grid system");
    let mut cfg = ServeConfig::with_workers(1);
    let mut dcfg = DurabilityConfig::at(dir);
    dcfg.checkpoint_updates = 8; // two threshold checkpoints per run
    cfg.durability = Some(dcfg);
    cfg.fault = Some(Arc::clone(&plan));
    let server = sys.serve_with(cfg);

    // Distinct-edge inserts only (fragment-0 node pairs, enumerated
    // deterministically) so "the surviving prefix" is a well-defined
    // edge set even when one op's fate is ambiguous.
    let f0 = server.snapshot().fragmentation().fragment(0).clone();
    let nodes0 = f0.nodes().to_vec();
    let mut pairs = Vec::new();
    for i in 0..nodes0.len() {
        for j in (i + 1)..nodes0.len() {
            pairs.push((nodes0[i], nodes0[j]));
        }
    }
    assert!(pairs.len() >= UPDATES as usize, "fragment 0 too small");

    let mut applied: Vec<Edge> = Vec::new();
    let mut ambiguous: Option<Edge> = None;
    let mut refused = 0u32;
    for &(a, b) in pairs.iter().take(UPDATES as usize) {
        let edge = Edge::new(a, b, 1 + splitmix(&mut rng) % 4);
        match server.update(&NetworkUpdate::Insert { edge, owner: 0 }) {
            Ok(_) => applied.push(edge),
            // Append-before-apply: the WAL refused the group commit, so
            // the update is guaranteed NOT applied and NOT durable.
            Err(ClosureError::DurabilityFailed) => refused += 1,
            // The writer died at the append hook and was respawned; this
            // op is the one whose durability is ambiguous.
            Err(ClosureError::WriterRestarted) => {
                assert!(ambiguous.is_none(), "seed {seed}: two ambiguous ops");
                ambiguous = Some(edge);
            }
            Err(e) => panic!("seed {seed}: unexpected update error {e}"),
        }
    }
    let stats = server.shutdown();

    // Cold recovery of the directory the dead server left behind.
    let rec = discset::recover(dir).unwrap_or_else(|e| panic!("seed {seed}: recover failed: {e}"));
    let recovered = DisconnectionSetEngine::from_snapshot(rec.snapshot.clone());

    // Oracle(s) over the surviving prefix: symmetric closure of the
    // original grid plus the acked inserts — and, when one op is
    // ambiguous, the variant that also includes it. The recovered
    // engine must match ONE of them on every probe (prefix
    // consistency: never a mix, never anything else).
    let oracle_graph = |extra: &[Edge]| -> CsrGraph {
        let mut es: Vec<Edge> = g.closure_graph().edges().collect();
        for e in extra {
            es.push(*e);
            es.push(e.reversed());
        }
        CsrGraph::from_edges(g.nodes, &es)
    };
    let without = oracle_graph(&applied);
    let with = ambiguous.map(|e| {
        let mut v = applied.clone();
        v.push(e);
        oracle_graph(&v)
    });
    let mut matches_without = true;
    let mut matches_with = with.is_some();
    for probe in 0..60u32 {
        let (x, y) = (n(splitmix(&mut rng), nodes), n(splitmix(&mut rng), nodes));
        let got = recovered.shortest_path(x, y).cost;
        if got != baseline::shortest_path_cost(&without, x, y) {
            matches_without = false;
        }
        if let Some(w) = &with {
            if got != baseline::shortest_path_cost(w, x, y) {
                matches_with = false;
            }
        }
        if !matches_without && !matches_with {
            panic!("seed {seed}: probe {probe} ({x:?} -> {y:?}) matches no oracle");
        }
    }
    assert!(
        matches_without || matches_with,
        "seed {seed}: recovered state is not a prefix of the acked history"
    );

    // Scenario-shaped bookkeeping.
    assert!(plan.exhausted(), "seed {seed}: fault never fired");
    match kind {
        0..=2 => {
            assert_eq!(refused, 1, "seed {seed}: exactly one refused group commit");
            assert!(stats.wal_failures >= 1, "seed {seed}");
            assert_eq!(applied.len() as u64, UPDATES - 1, "seed {seed}");
            assert_eq!(rec.epoch, applied.len() as u64, "seed {seed}");
        }
        3 => {
            // The checkpoint failed *after* the acks: nothing refused,
            // everything recovered from the older checkpoint + WAL.
            assert_eq!(refused, 0, "seed {seed}");
            assert_eq!(applied.len() as u64, UPDATES, "seed {seed}");
            assert!(stats.wal_failures >= 1, "seed {seed}");
            assert_eq!(rec.epoch, UPDATES, "seed {seed}");
        }
        _ => {
            assert!(stats.writer_restarts >= 1, "seed {seed}: no respawn");
            assert_eq!(refused, 0, "seed {seed}");
            assert!(ambiguous.is_some(), "seed {seed}: no ambiguous op");
            assert_eq!(applied.len() as u64, UPDATES - 1, "seed {seed}");
        }
    }

    // Restart-and-recover end-to-end: reopen through the facade and
    // keep serving + writing at the recovered epoch.
    let reopened = System::open(dir).unwrap_or_else(|e| panic!("seed {seed}: open failed: {e}"));
    let server2 = reopened.serve(1);
    assert_eq!(server2.stats().epoch, rec.epoch, "seed {seed}");
    let (a, b) = pairs[UPDATES as usize];
    let served = server2
        .update(&NetworkUpdate::Insert {
            edge: Edge::new(a, b, 1),
            owner: 0,
        })
        .unwrap_or_else(|e| panic!("seed {seed}: post-recovery update failed: {e}"));
    assert_eq!(served.epoch, rec.epoch + 1, "seed {seed}");
    server2.shutdown();
}

#[test]
fn durable_serve_kill_and_restart_sweep() {
    // 20 seeds × 5 fault kinds: every durability fault point fires at
    // several different arbitrary occurrences.
    for seed in 0..20u64 {
        let dir = std::env::temp_dir().join(format!(
            "discset-chaos-durable-{}-{seed}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let d = dir.clone();
        with_watchdog(format!("durable seed {seed}"), 120, move || {
            durable_chaos(seed, &d)
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
