//! Chaos property suite: deterministic seed-driven fault sweeps over
//! the three supervised tiers (serve pool, machine sites, bulk
//! materialization pool).
//!
//! Every scenario is derived from a seed by [`FaultScenario::from_seed`]
//! and armed through the same `ds_fault` hooks production code carries
//! disarmed, so a failing seed reproduces exactly. The properties under
//! test, for every seed:
//!
//! - **No hangs**: each scenario runs under a watchdog thread; a stuck
//!   request fails the test instead of wedging CI.
//! - **Every request completes**: each query/update either returns an
//!   answer or one of the *typed* errors the failure matrix allows for
//!   that scenario — never a panic in the caller, never a silent wrong
//!   answer.
//! - **Answers stay exact**: every successful answer matches a
//!   single-threaded Dijkstra oracle evaluated on the graph of the
//!   epoch the answer was served from.
//! - **Recovery**: after the fault plan is exhausted, the component has
//!   respawned (restart counters) and serves exact answers again. That
//!   now includes the serve writer: a panic respawns it from the last
//!   published snapshot (the in-flight update is reported as
//!   [`ClosureError::WriterRestarted`] and can be retried); only an
//!   injected *fail* rule degrades the pool to read-only, which the
//!   serve unit tests cover.
//!
//! The serve sweep additionally runs with an armed [`Observability`]
//! bundle shared across all seeds and dumps its metrics snapshot to
//! `target/chaos_metrics.json`, which CI uploads as an artifact — a
//! free profile of what the fault sweep actually exercised.

use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use discset::closure::{baseline, ClosureError, EngineConfig, TcEngine};
use discset::fragment::linear::{linear_sweep, LinearConfig};
use discset::gen::deterministic::grid;
use discset::graph::{Edge, NodeId};
use discset::machine::{Machine, MachineOptions};
use discset::relation::bulk::{MaterializeConfig, MaterializeEngine, MaterializeError};
use discset::relation::tc;
use discset::serve::{
    FaultPlan, FaultPoint, FaultScenario, FaultUniverse, ServeConfig, ServeError,
};
use discset::{Fragmenter, NetworkUpdate, Observability, System};

/// Run `f` on its own thread under a wall-clock watchdog. A scenario
/// that neither finishes nor panics within `secs` is reported as a hang
/// (the no-hang property is itself under test); a panicking scenario is
/// propagated with its original payload.
fn with_watchdog<F: FnOnce() + Send + 'static>(name: String, secs: u64, f: F) {
    let (done_tx, done_rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => handle.join().expect("scenario thread"),
        // Sender dropped without sending: the scenario panicked.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{name}: hang detected — scenario still running after {secs}s watchdog")
        }
    }
}

/// SplitMix64, so the traffic is as reproducible as the fault plan.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn n(i: u64, nodes: u64) -> NodeId {
    NodeId((i % nodes) as u32)
}

// ---------------------------------------------------------------- serve

/// One serve-tier scenario: a 1-worker pool over a 9×4 grid fragmented
/// three ways, driven by 120 sequential operations (an update every
/// 10th, toggling a fragment-0 shortcut). Single worker + sequential
/// traffic make the fault's nth-occurrence counters line up with the
/// operation sequence, so each seed is fully deterministic.
fn serve_chaos(seed: u64, obs: Arc<Observability>) {
    let universe = FaultUniverse {
        workers: 1,
        sites: 0, // no machine in this scenario: seed%4==1 falls back to WriterKill
        fragments: 0,
    };
    let scenario = FaultScenario::from_seed(seed, &universe);
    let plan = Arc::new(scenario.plan(&universe));

    let g = grid(9, 4);
    let nodes = g.nodes as u64;
    let sys = System::builder()
        .graph(&g)
        .fragmenter(Fragmenter::Linear(LinearConfig {
            fragments: 3,
            ..Default::default()
        }))
        .build()
        .expect("valid grid system");
    let mut cfg = ServeConfig::with_workers(1);
    cfg.fault = Some(plan.clone());
    cfg.obs = Some(obs);
    let server = sys.serve_with(cfg);

    // Per-epoch oracle: the graph behind every epoch ever published.
    // Answers may be served from an older epoch than the current one;
    // they must match the oracle *for their own epoch*.
    let mut epochs: BTreeMap<u64, _> = BTreeMap::new();
    epochs.insert(server.epoch(), server.snapshot().graph().clone());

    let f0 = server.snapshot().fragmentation().fragment(0).clone();
    let (a, b) = (
        f0.nodes()[0],
        *f0.nodes().last().expect("non-empty fragment"),
    );

    let mut rng = seed ^ 0xC4A5;
    let mut toggle_in = true;
    let mut worker_failures = 0u32;
    let mut writer_failures = 0u32;
    let mut ok_reads_after_writer_restart = 0u32;
    let mut ok_updates_after_writer_restart = 0u32;
    for op in 0..120u32 {
        if op % 10 == 9 {
            let update = if toggle_in {
                NetworkUpdate::Insert {
                    edge: Edge::new(a, b, 1),
                    owner: 0,
                }
            } else {
                NetworkUpdate::Remove {
                    src: a,
                    dst: b,
                    owner: 0,
                }
            };
            match server.update(&update) {
                Ok(served) => {
                    toggle_in = !toggle_in;
                    epochs.insert(served.epoch, server.snapshot().graph().clone());
                    if writer_failures > 0 {
                        ok_updates_after_writer_restart += 1;
                    }
                }
                // The writer died mid-publication and was respawned from
                // the last published snapshot; the in-flight update was
                // lost (toggle_in stays put) and is retried next round.
                Err(ClosureError::WriterRestarted) => writer_failures += 1,
                Err(e) => panic!("seed {seed}: unexpected update error {e}"),
            }
            continue;
        }
        let (x, y) = (n(splitmix(&mut rng), nodes), n(splitmix(&mut rng), nodes));
        match server.query(x, y) {
            Ok(served) => {
                let (epoch, graph) = epochs
                    .range(..=served.epoch)
                    .next_back()
                    .expect("answer epoch was published");
                assert_eq!(
                    served.answer.cost,
                    baseline::shortest_path_cost(graph, x, y),
                    "seed {seed}: op {op} ({x:?} -> {y:?}) diverged from the epoch-{epoch} oracle"
                );
                if writer_failures > 0 {
                    ok_reads_after_writer_restart += 1;
                }
            }
            Err(ServeError::Request(ClosureError::WorkerFailed)) => worker_failures += 1,
            Err(e) => panic!("seed {seed}: unexpected query error {e}"),
        }
    }

    let stats = server.shutdown();
    match scenario {
        FaultScenario::WorkerPanic { .. } => {
            assert!(plan.exhausted(), "seed {seed}: fault never fired");
            assert!(
                worker_failures >= 1,
                "seed {seed}: no doomed batch observed"
            );
            assert!(
                stats.worker_restarts >= 1,
                "seed {seed}: no supervisor respawn"
            );
            assert!(
                !stats.degraded,
                "seed {seed}: worker death must not degrade writes"
            );
        }
        FaultScenario::WriterKill { .. } => {
            assert!(plan.exhausted(), "seed {seed}: fault never fired");
            assert!(
                writer_failures >= 1,
                "seed {seed}: no WriterRestarted observed"
            );
            assert!(
                stats.writer_restarts >= 1,
                "seed {seed}: no supervisor respawn"
            );
            assert!(
                !stats.degraded,
                "seed {seed}: a writer panic must respawn, not degrade"
            );
            assert!(
                ok_reads_after_writer_restart >= 1,
                "seed {seed}: reads must keep serving across the restart"
            );
            assert!(
                ok_updates_after_writer_restart >= 1,
                "seed {seed}: updates must resume after the respawn"
            );
            assert_eq!(worker_failures, 0, "seed {seed}: readers are unaffected");
        }
        FaultScenario::DelayStorm { .. } => {
            assert_eq!(
                worker_failures, 0,
                "seed {seed}: delays must not fail requests"
            );
            assert_eq!(
                writer_failures, 0,
                "seed {seed}: delays must not fail updates"
            );
            assert_eq!(stats.worker_restarts, 0, "seed {seed}");
            assert!(!stats.degraded, "seed {seed}");
        }
        FaultScenario::SiteKill { .. } => unreachable!("universe has no sites"),
    }
}

#[test]
fn serve_chaos_seed_sweep() {
    // One armed bundle across the whole sweep: the aggregate metrics
    // profile what the chaos run exercised (restarts, sheds, epochs).
    let obs = Observability::armed();
    // ≥ 4 consecutive seeds covers every scenario kind (worker panic,
    // writer kill, delay storm — seed%4==1 maps to WriterKill here).
    for seed in 0..8u64 {
        let o = Arc::clone(&obs);
        with_watchdog(format!("serve seed {seed}"), 120, move || {
            serve_chaos(seed, o)
        });
    }
    let snap = obs.snapshot();
    assert!(snap.counter("serve_writer_restarts").unwrap_or(0) >= 1);
    assert!(snap.counter("serve_worker_restarts").unwrap_or(0) >= 1);
    assert!(snap.counter("serve_requests").unwrap_or(0) >= 8 * 100);
    let out = std::path::Path::new("target").join("chaos_metrics.json");
    if let Err(e) = std::fs::write(&out, snap.to_json()) {
        eprintln!("could not write {}: {e}", out.display());
    }
}

// -------------------------------------------------------------- machine

/// One machine-tier scenario: 3 site threads over the fragmented grid,
/// a short dead-site timeout, 16 queries, then an update, then a
/// post-recovery exactness sweep. Odd seeds only: seed%4 ∈ {1, 3} maps
/// to SiteKill / DelayStorm, the two scenarios with machine components.
fn machine_chaos(seed: u64) {
    let universe = FaultUniverse {
        workers: 0,
        sites: 3,
        fragments: 0,
    };
    let scenario = FaultScenario::from_seed(seed, &universe);
    let plan = Arc::new(scenario.plan(&universe));

    let g = grid(9, 4);
    let nodes = g.nodes as u64;
    let oracle = g.closure_graph();
    let frag = linear_sweep(
        &g.edge_list(),
        &LinearConfig {
            fragments: 3,
            ..Default::default()
        },
    )
    .expect("grid sweep")
    .fragmentation;
    let mut m = Machine::deploy_with_options(
        g.closure_graph(),
        frag,
        true,
        EngineConfig::default(),
        MachineOptions {
            site_recv_timeout: Duration::from_millis(300),
            fault: Some(plan.clone()),
            ..Default::default()
        },
    )
    .expect("valid deployment");

    let mut rng = seed ^ 0x51735;
    let mut site_failures = 0u32;
    for op in 0..16u32 {
        let (x, y) = (n(splitmix(&mut rng), nodes), n(splitmix(&mut rng), nodes));
        match m.try_shortest_path(x, y) {
            Ok(answer) => assert_eq!(
                answer.cost,
                baseline::shortest_path_cost(&oracle, x, y),
                "seed {seed}: op {op} ({x:?} -> {y:?}) diverged from the oracle"
            ),
            Err(ClosureError::SiteUnavailable { site }) => {
                assert!(site < 3, "seed {seed}: phantom site {site}");
                site_failures += 1;
            }
            Err(e) => panic!("seed {seed}: unexpected query error {e}"),
        }
    }

    // One update through the possibly-wounded machine. Even when it
    // reports SiteUnavailable the update IS applied — failed sites are
    // redeployed from the coordinator's post-maintenance state.
    let f0 = m.fragmentation().fragment(0).clone();
    let (a, b) = (
        f0.nodes()[0],
        *f0.nodes().last().expect("non-empty fragment"),
    );
    match m.update(&NetworkUpdate::Insert {
        edge: Edge::new(a, b, 1),
        owner: 0,
    }) {
        Ok(_) => {}
        Err(ClosureError::SiteUnavailable { .. }) => site_failures += 1,
        Err(e) => panic!("seed {seed}: unexpected update error {e}"),
    }
    let updated = m.snapshot().graph().clone();

    // Post-recovery: the plan's one-shot rules are spent, so every
    // query must now succeed and agree with the post-update oracle.
    for op in 0..8u32 {
        let (x, y) = (n(splitmix(&mut rng), nodes), n(splitmix(&mut rng), nodes));
        let answer = m
            .try_shortest_path(x, y)
            .unwrap_or_else(|e| panic!("seed {seed}: post-recovery query failed: {e}"));
        assert_eq!(
            answer.cost,
            baseline::shortest_path_cost(&updated, x, y),
            "seed {seed}: post-recovery op {op} ({x:?} -> {y:?}) diverged"
        );
    }

    match scenario {
        FaultScenario::SiteKill { .. } => {
            assert!(plan.exhausted(), "seed {seed}: fault never fired");
            assert!(
                site_failures >= 1,
                "seed {seed}: no SiteUnavailable observed"
            );
            assert!(
                m.stats().site_restarts >= 1,
                "seed {seed}: dead site was never redeployed"
            );
        }
        FaultScenario::DelayStorm { .. } => {
            // ≤ 10 ms per delayed message, well under the 300 ms dead-site
            // timeout: slowness alone must never trip failover.
            assert_eq!(site_failures, 0, "seed {seed}: delays tripped failover");
            assert_eq!(m.stats().site_restarts, 0, "seed {seed}");
        }
        other => unreachable!("odd seeds with sites never map to {other:?}"),
    }
}

#[test]
fn machine_chaos_seed_sweep() {
    // Odd seeds alternate SiteKill (1 mod 4) and DelayStorm (3 mod 4).
    for seed in [1u64, 3, 5, 7, 9, 11] {
        with_watchdog(format!("machine seed {seed}"), 120, move || {
            machine_chaos(seed)
        });
    }
}

// ----------------------------------------------------------------- bulk

/// One bulk-tier scenario: a worker dies (panic or silent exit) on one
/// fragment of the 3-way grid partition. The run must abort with the
/// typed error and clean joins; a retry on the same engine (the rule is
/// one-shot) must converge to the exact semi-naive closure.
fn bulk_chaos(seed: u64) {
    let g = grid(9, 4);
    let frag = linear_sweep(
        &g.edge_list(),
        &LinearConfig {
            fragments: 3,
            ..Default::default()
        },
    )
    .expect("grid sweep")
    .fragmentation;

    let fragment = (seed % 3) as usize;
    let point = FaultPoint::BulkWorker { fragment };
    let plan = if seed.is_multiple_of(2) {
        FaultPlan::new().panic_at(point, 1)
    } else {
        FaultPlan::new().fail_at(point, 1)
    };
    // Even seeds exercise the thread pool, odd seeds the inline driver:
    // the isolation contract is mode-independent.
    let threads = if seed.is_multiple_of(2) { 2 } else { 1 };
    let engine = MaterializeEngine::from_fragmentation(
        &frag,
        true,
        MaterializeConfig {
            threads,
            fault: Some(Arc::new(plan)),
            ..Default::default()
        },
    );

    let err = engine.materialize().expect_err("armed run must abort");
    assert_eq!(
        err,
        MaterializeError::WorkerPanicked { fragment },
        "seed {seed}"
    );

    // Clean joins + one-shot rule: the same engine retries to the exact
    // fixpoint.
    let (bulk, _) = engine
        .materialize()
        .unwrap_or_else(|e| panic!("seed {seed}: retry after abort failed: {e}"));
    let (seq, _) = tc::seminaive_closure(&engine.partition().union_relation(), None);
    assert_eq!(bulk.rows(), seq.rows(), "seed {seed}: retry diverged");
}

#[test]
fn bulk_chaos_seed_sweep() {
    for seed in 0..6u64 {
        with_watchdog(format!("bulk seed {seed}"), 120, move || bulk_chaos(seed));
    }
}
