//! Property-based tests over the workspace invariants (proptest).

use discset::closure::baseline;
use discset::closure::engine::{DisconnectionSetEngine, EngineConfig};
use discset::fragment::center::{center_based, CenterConfig};
use discset::fragment::linear::{linear_sweep, LinearConfig};
use discset::gen::{generate_general, GeneralConfig};
use discset::graph::{Coord, CsrGraph, Edge, EdgeList, NodeId};
use discset::relation::join::compose_min_plus;
use discset::relation::{tc, PathTuple, Relation};
use proptest::prelude::*;

/// Strategy: a random connected-ish symmetric graph as (node_count,
/// connection list, coords), by sampling edges over node pairs.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<Edge>, Vec<Coord>)> {
    (4usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1u64..50),
            n..(3 * n),
        );
        edges.prop_map(move |raw| {
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for (a, b, c) in raw {
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if seen.insert(key) {
                    out.push(Edge::new(NodeId(key.0), NodeId(key.1), c));
                }
            }
            // Back-bone path so the graph is connected (keeps reachability
            // cases interesting rather than mostly-unreachable).
            for i in 0..(n as u32 - 1) {
                let key = (i, i + 1);
                if seen.insert(key) {
                    out.push(Edge::new(NodeId(i), NodeId(i + 1), 10));
                }
            }
            let coords: Vec<Coord> =
                (0..n).map(|i| Coord::new(i as f64 * 3.0, (i % 5) as f64)).collect();
            (n, out, coords)
        })
    })
}

fn closure_graph(n: usize, connections: &[Edge]) -> CsrGraph {
    let mut edges = Vec::with_capacity(connections.len() * 2);
    for e in connections {
        edges.push(*e);
        edges.push(e.reversed());
    }
    CsrGraph::from_edges(n, &edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every fragmenter must partition the relation exactly.
    #[test]
    fn fragmenters_partition_the_relation((n, conns, coords) in arb_graph()) {
        let el = EdgeList::new(n, conns.clone()).with_coords(coords);
        let lin = linear_sweep(&el, &LinearConfig { fragments: 3, ..Default::default() })
            .unwrap().fragmentation;
        prop_assert!(lin.validate(&conns).is_ok());
        let cen = center_based(&el, &CenterConfig { fragments: 2, ..Default::default() })
            .unwrap().fragmentation;
        prop_assert!(cen.validate(&conns).is_ok());
    }

    /// The linear sweep's fragmentation graph is always acyclic (§3.3).
    #[test]
    fn linear_sweep_always_loosely_connected((n, conns, coords) in arb_graph()) {
        let el = EdgeList::new(n, conns).with_coords(coords);
        for f in [2usize, 3, 5] {
            let out = linear_sweep(&el, &LinearConfig { fragments: f, ..Default::default() })
                .unwrap();
            prop_assert!(out.fragmentation.fragmentation_graph().is_acyclic());
        }
    }

    /// Disconnection sets are symmetric node intersections.
    #[test]
    fn disconnection_sets_are_intersections((n, conns, coords) in arb_graph()) {
        let el = EdgeList::new(n, conns).with_coords(coords);
        let frag = linear_sweep(&el, &LinearConfig { fragments: 3, ..Default::default() })
            .unwrap().fragmentation;
        for ((i, j), nodes) in frag.disconnection_sets() {
            for v in nodes {
                prop_assert!(frag.fragment(i).contains_node(v));
                prop_assert!(frag.fragment(j).contains_node(v));
            }
        }
    }

    /// The crown jewel: disconnection-set answers equal global Dijkstra.
    #[test]
    fn engine_matches_global_dijkstra((n, conns, coords) in arb_graph()) {
        let el = EdgeList::new(n, conns.clone()).with_coords(coords);
        let frag = linear_sweep(&el, &LinearConfig { fragments: 3, ..Default::default() })
            .unwrap().fragmentation;
        let csr = closure_graph(n, &conns);
        let engine = DisconnectionSetEngine::build(
            csr.clone(), frag, true, EngineConfig::default()).unwrap();
        for x in 0..(n as u32).min(6) {
            for y in 0..(n as u32).min(6) {
                let got = engine.shortest_path(NodeId(x), NodeId(y)).cost;
                let want = baseline::shortest_path_cost(&csr, NodeId(x), NodeId(y));
                prop_assert_eq!(got, want, "query {}->{}", x, y);
            }
        }
    }

    /// Complementary shortcut costs obey the triangle inequality with the
    /// global metric (they ARE global distances).
    #[test]
    fn shortcut_costs_are_global_distances((n, conns, coords) in arb_graph()) {
        let el = EdgeList::new(n, conns.clone()).with_coords(coords);
        let frag = linear_sweep(&el, &LinearConfig { fragments: 3, ..Default::default() })
            .unwrap().fragmentation;
        let csr = closure_graph(n, &conns);
        let comp = discset::closure::ComplementaryInfo::compute(
            &csr, &frag, discset::closure::ComplementaryScope::PerFragmentBorder, false);
        for f in 0..frag.fragment_count() {
            for e in comp.shortcuts(f) {
                prop_assert_eq!(
                    Some(e.cost),
                    baseline::shortest_path_cost(&csr, e.src, e.dst)
                );
            }
        }
    }

    /// Min-plus composition is associative.
    #[test]
    fn min_plus_composition_is_associative(
        a_rows in proptest::collection::vec((0u32..4, 4u32..8, 1u64..20), 1..12),
        b_rows in proptest::collection::vec((4u32..8, 8u32..12, 1u64..20), 1..12),
        c_rows in proptest::collection::vec((8u32..12, 12u32..16, 1u64..20), 1..12),
    ) {
        let rel = |name: &str, rows: &[(u32, u32, u64)]| {
            Relation::from_rows(
                name,
                rows.iter().map(|&(s, d, c)| PathTuple::new(NodeId(s), NodeId(d), c)).collect(),
            )
        };
        let (a, b, c) = (rel("a", &a_rows), rel("b", &b_rows), rel("c", &c_rows));
        let left = compose_min_plus(&compose_min_plus(&a, &b), &c);
        let right = compose_min_plus(&a, &compose_min_plus(&b, &c));
        prop_assert_eq!(left.rows(), right.rows());
    }

    /// Semi-naive and naive closure agree.
    #[test]
    fn seminaive_equals_naive(rows in proptest::collection::vec((0u32..8, 0u32..8, 1u64..9), 1..20)) {
        let rel = Relation::from_rows(
            "R",
            rows.iter().map(|&(s, d, c)| PathTuple::new(NodeId(s), NodeId(d), c)).collect::<Vec<_>>(),
        );
        let (a, _) = tc::seminaive_closure(&rel, None);
        let (b, _) = tc::naive_closure(&rel, None);
        prop_assert_eq!(a.rows(), b.rows());
    }

    /// Generators are deterministic per seed.
    #[test]
    fn generator_determinism(seed in 0u64..500) {
        let cfg = GeneralConfig { nodes: 30, target_edges: 60, ..Default::default() };
        let a = generate_general(&cfg, seed);
        let b = generate_general(&cfg, seed);
        prop_assert_eq!(a.connections, b.connections);
        prop_assert_eq!(a.coords, b.coords);
    }
}
