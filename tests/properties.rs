//! Property-based tests over the workspace invariants.
//!
//! The build environment is offline, so instead of `proptest` these
//! properties run over many deterministic seeds: each case derives a
//! random-ish structure from the vendored seeded RNG and asserts the
//! invariant. Failures print the offending seed, which reproduces the
//! case exactly.

use discset::closure::baseline;
use discset::closure::engine::{DisconnectionSetEngine, EngineConfig};
use discset::closure::executor::ExecutionMode;
use discset::fragment::center::{center_based, CenterConfig};
use discset::fragment::linear::{linear_sweep, LinearConfig};
use discset::gen::{
    generate_general, generate_transportation, GeneralConfig, TransportationConfig,
};
use discset::graph::{Coord, CsrGraph, Edge, EdgeList, NodeId};
use discset::relation::join::compose_min_plus;
use discset::relation::{tc, PathTuple, Relation};
use discset::{Backend, Fragmenter, QueryRequest, System, TcEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// A random connected-ish symmetric graph as (node_count, connection
/// list, coords): random edges over node pairs plus a backbone path so
/// reachability cases stay interesting rather than mostly-unreachable.
fn arb_graph(seed: u64) -> (usize, Vec<Edge>, Vec<Coord>) {
    let mut rng = StdRng::seed_from_u64(0x9E37 ^ seed.wrapping_mul(0x85EB_CA6B));
    let n = 4 + rng.gen_index(20); // 4..24 nodes
    let attempts = n + rng.gen_index(2 * n);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for _ in 0..attempts {
        let a = rng.gen_index(n) as u32;
        let b = rng.gen_index(n) as u32;
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        let cost = 1 + rng.gen_index(49) as u64;
        if seen.insert(key) {
            out.push(Edge::new(NodeId(key.0), NodeId(key.1), cost));
        }
    }
    for i in 0..(n as u32 - 1) {
        let key = (i, i + 1);
        if seen.insert(key) {
            out.push(Edge::new(NodeId(i), NodeId(i + 1), 10));
        }
    }
    let coords: Vec<Coord> = (0..n)
        .map(|i| Coord::new(i as f64 * 3.0, (i % 5) as f64))
        .collect();
    (n, out, coords)
}

fn closure_graph(n: usize, connections: &[Edge]) -> CsrGraph {
    let mut edges = Vec::with_capacity(connections.len() * 2);
    for e in connections {
        edges.push(*e);
        edges.push(e.reversed());
    }
    CsrGraph::from_edges(n, &edges)
}

/// Every fragmenter must partition the relation exactly.
#[test]
fn fragmenters_partition_the_relation() {
    for seed in 0..CASES {
        let (n, conns, coords) = arb_graph(seed);
        let el = EdgeList::new(n, conns.clone()).with_coords(coords);
        let lin = linear_sweep(
            &el,
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        assert!(lin.validate(&conns).is_ok(), "seed {seed}: linear");
        let cen = center_based(
            &el,
            &CenterConfig {
                fragments: 2,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        assert!(cen.validate(&conns).is_ok(), "seed {seed}: center");
    }
}

/// The linear sweep's fragmentation graph is always acyclic (§3.3).
#[test]
fn linear_sweep_always_loosely_connected() {
    for seed in 0..CASES {
        let (n, conns, coords) = arb_graph(seed);
        let el = EdgeList::new(n, conns).with_coords(coords);
        for f in [2usize, 3, 5] {
            let out = linear_sweep(
                &el,
                &LinearConfig {
                    fragments: f,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                out.fragmentation.fragmentation_graph().is_acyclic(),
                "seed {seed}, {f} fragments"
            );
        }
    }
}

/// Disconnection sets are symmetric node intersections.
#[test]
fn disconnection_sets_are_intersections() {
    for seed in 0..CASES {
        let (n, conns, coords) = arb_graph(seed);
        let el = EdgeList::new(n, conns).with_coords(coords);
        let frag = linear_sweep(
            &el,
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        for ((i, j), nodes) in frag.disconnection_sets() {
            for v in nodes {
                assert!(frag.fragment(i).contains_node(v), "seed {seed}");
                assert!(frag.fragment(j).contains_node(v), "seed {seed}");
            }
        }
    }
}

/// The crown jewel: disconnection-set answers equal global Dijkstra.
#[test]
fn engine_matches_global_dijkstra() {
    for seed in 0..CASES {
        let (n, conns, coords) = arb_graph(seed);
        let el = EdgeList::new(n, conns.clone()).with_coords(coords);
        let frag = linear_sweep(
            &el,
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let csr = closure_graph(n, &conns);
        let engine =
            DisconnectionSetEngine::build(csr.clone(), frag, true, EngineConfig::default())
                .unwrap();
        for x in 0..(n as u32).min(6) {
            for y in 0..(n as u32).min(6) {
                let got = engine.shortest_path(NodeId(x), NodeId(y)).cost;
                let want = baseline::shortest_path_cost(&csr, NodeId(x), NodeId(y));
                assert_eq!(got, want, "seed {seed}, query {x}->{y}");
            }
        }
    }
}

/// Backend equivalence: every `TcEngine` implementation — inline
/// (sequential and parallel phase one) and the site-thread machine —
/// answers random queries identically to the centralized baseline, via
/// both the single-query and the batch path, across generators ×
/// fragmenters. This is the contract that makes backends swappable.
#[test]
fn all_backends_match_baseline_on_random_workloads() {
    for seed in 0..12 {
        // Alternate the two random generators of §4.1.
        let g = if seed % 2 == 0 {
            generate_general(
                &GeneralConfig {
                    nodes: 30,
                    target_edges: 70,
                    ..Default::default()
                },
                seed,
            )
        } else {
            generate_transportation(
                &TransportationConfig {
                    clusters: 3,
                    nodes_per_cluster: 10,
                    target_edges_per_cluster: 25,
                    ..TransportationConfig::default()
                },
                seed,
            )
        };
        let csr = g.closure_graph();
        let n = g.nodes as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let queries: Vec<(NodeId, NodeId)> = (0..10)
            .map(|_| {
                (
                    NodeId(rng.gen_index(n as usize) as u32),
                    NodeId(rng.gen_index(n as usize) as u32),
                )
            })
            .collect();

        let mut fragmenters = vec![
            Fragmenter::Linear(LinearConfig {
                fragments: 3,
                ..Default::default()
            }),
            Fragmenter::Center(CenterConfig {
                fragments: 3,
                ..Default::default()
            }),
        ];
        if let Some(labels) = &g.cluster_of {
            fragmenters.push(Fragmenter::ByLabels {
                labels: labels.clone(),
                parts: (*labels.iter().max().unwrap() + 1) as usize,
                policy: discset::fragment::CrossingPolicy::LowerBlock,
            });
        }
        for fragmenter in fragmenters {
            for (backend, mode) in [
                (Backend::Inline, ExecutionMode::Sequential),
                (Backend::Inline, ExecutionMode::Parallel),
                (Backend::SiteThreads, ExecutionMode::Sequential),
            ] {
                let mut sys = System::builder()
                    .graph(&g)
                    .fragmenter(fragmenter.clone())
                    .backend(backend)
                    .config(EngineConfig {
                        mode,
                        ..EngineConfig::default()
                    })
                    .build()
                    .unwrap();
                for &(x, y) in &queries {
                    assert_eq!(
                        sys.shortest_path(x, y).cost,
                        baseline::shortest_path_cost(&csr, x, y),
                        "seed {seed}, {}/{mode:?}, {x}->{y}",
                        sys.backend_name()
                    );
                }
                let requests: Vec<QueryRequest> = queries
                    .iter()
                    .map(|&(x, y)| QueryRequest::new(x, y))
                    .collect();
                let batch = sys.query_batch(&requests);
                for (&(x, y), a) in queries.iter().zip(&batch.answers) {
                    assert_eq!(
                        a.cost,
                        baseline::shortest_path_cost(&csr, x, y),
                        "seed {seed}, {} batch, {x}->{y}",
                        sys.backend_name()
                    );
                }
            }
        }
    }
}

/// Draw a random in-fragment update against the engine's *current*
/// fragmentation: mostly inserts between random fragment nodes, plus
/// deletions of random fragment edges.
fn arb_update(
    rng: &mut StdRng,
    frag: &discset::fragment::Fragmentation,
) -> Option<discset::NetworkUpdate> {
    use discset::NetworkUpdate;
    let owner = rng.gen_index(frag.fragment_count());
    if rng.gen_index(5) < 3 {
        let nodes = frag.fragment(owner).nodes();
        if nodes.len() < 2 {
            return None;
        }
        let a = nodes[rng.gen_index(nodes.len())];
        let b = nodes[rng.gen_index(nodes.len())];
        let cost = 1 + rng.gen_index(30) as u64;
        Some(NetworkUpdate::Insert {
            edge: Edge::new(a, b, cost),
            owner,
        })
    } else {
        let edges = frag.fragment(owner).edges();
        if edges.is_empty() {
            return None;
        }
        let e = edges[rng.gen_index(edges.len())];
        Some(NetworkUpdate::Remove {
            src: e.src,
            dst: e.dst,
            owner,
        })
    }
}

/// Update-equivalence: an engine maintained through ≥ 20 random mixed
/// inserts/deletes answers every `shortest_path`/`connected` query
/// identically to an engine rebuilt from scratch on the final graph —
/// for every generator × fragmenter × backend.
#[test]
fn maintained_engine_equals_rebuilt_from_scratch() {
    use discset::gen::output::expand_connections;
    let mut case = 0u64;
    for seed in 0..6u64 {
        let g = if seed % 2 == 0 {
            generate_general(
                &GeneralConfig {
                    nodes: 26,
                    target_edges: 60,
                    ..Default::default()
                },
                seed,
            )
        } else {
            generate_transportation(
                &TransportationConfig {
                    clusters: 3,
                    nodes_per_cluster: 9,
                    target_edges_per_cluster: 22,
                    ..TransportationConfig::default()
                },
                seed,
            )
        };
        let mut fragmenters = vec![
            Fragmenter::Linear(LinearConfig {
                fragments: 3,
                ..Default::default()
            }),
            Fragmenter::Center(CenterConfig {
                fragments: 3,
                ..Default::default()
            }),
        ];
        if let Some(labels) = &g.cluster_of {
            fragmenters.push(Fragmenter::ByLabels {
                labels: labels.clone(),
                parts: (*labels.iter().max().unwrap() + 1) as usize,
                policy: discset::fragment::CrossingPolicy::LowerBlock,
            });
        }
        for fragmenter in fragmenters {
            for backend in [Backend::Inline, Backend::SiteThreads] {
                case += 1;
                let mut rng = StdRng::seed_from_u64(0xA11CE ^ case);
                let mut sys = System::builder()
                    .graph(&g)
                    .fragmenter(fragmenter.clone())
                    .backend(backend)
                    .build()
                    .unwrap();
                let mut applied = 0;
                for _ in 0..300 {
                    if applied >= 20 {
                        break;
                    }
                    let Some(update) = arb_update(&mut rng, sys.fragmentation()) else {
                        continue;
                    };
                    let report = sys.update(&update).unwrap();
                    assert_eq!(
                        report.full_recompute,
                        report.fallback_reason.is_some(),
                        "seed {seed} case {case}: report invariant ({report:?})"
                    );
                    applied += 1;
                }
                assert!(applied >= 20, "seed {seed}: not enough applicable updates");

                // Rebuild from scratch on the final graph: the maintained
                // fragmentation *is* the final network.
                let final_frag = sys.fragmentation().clone();
                let connections: Vec<Edge> = final_frag
                    .fragments()
                    .iter()
                    .flat_map(|f| f.edges().iter().copied())
                    .collect();
                let csr = CsrGraph::from_edges(g.nodes, &expand_connections(&connections, true));
                let mut fresh = System::builder()
                    .network(g.nodes, connections)
                    .fragmenter(Fragmenter::Prebuilt(final_frag))
                    .backend(Backend::Inline)
                    .build()
                    .unwrap();
                for _ in 0..40 {
                    let x = NodeId(rng.gen_index(g.nodes) as u32);
                    let y = NodeId(rng.gen_index(g.nodes) as u32);
                    let want = baseline::shortest_path_cost(&csr, x, y);
                    assert_eq!(
                        sys.shortest_path(x, y).cost,
                        want,
                        "seed {seed} case {case} {}: maintained {x}->{y}",
                        sys.backend_name()
                    );
                    assert_eq!(
                        fresh.shortest_path(x, y).cost,
                        want,
                        "seed {seed} case {case}: rebuilt {x}->{y}"
                    );
                    assert_eq!(
                        sys.connected(x, y),
                        x == y || want.is_some(),
                        "seed {seed} case {case}: connected {x}->{y}"
                    );
                }
            }
        }
    }
}

/// Reachability-index equivalence: `connected` answered through the
/// SCC/chain index of an engine *maintained* through a 20-step mixed
/// insert/delete stream equals (a) plain Dijkstra connectivity on the
/// final graph and (b) an engine rebuilt from scratch on that graph
/// (whose index is built fresh, never maintained) — exhaustively over
/// all node pairs, for every generator × {linear, center} fragmenter ×
/// backend. This pins the keep/drop/rebuild rules of
/// `ConnectivityEffect`: a stale index kept alive by a wrong rule shows
/// up here as a connectivity answer diverging from the oracle.
#[test]
fn reachability_index_equals_dijkstra_connected() {
    use discset::gen::output::expand_connections;

    let mut case = 0u64;
    for seed in 0..6u64 {
        let g = if seed % 2 == 0 {
            generate_general(
                &GeneralConfig {
                    nodes: 26,
                    target_edges: 60,
                    ..Default::default()
                },
                seed,
            )
        } else {
            generate_transportation(
                &TransportationConfig {
                    clusters: 3,
                    nodes_per_cluster: 9,
                    target_edges_per_cluster: 22,
                    ..TransportationConfig::default()
                },
                seed,
            )
        };
        for fragmenter in [
            Fragmenter::Linear(LinearConfig {
                fragments: 3,
                ..Default::default()
            }),
            Fragmenter::Center(CenterConfig {
                fragments: 3,
                ..Default::default()
            }),
        ] {
            for backend in [Backend::Inline, Backend::SiteThreads] {
                case += 1;
                let mut rng = StdRng::seed_from_u64(0x2EAC4 ^ case);
                let mut sys = System::builder()
                    .graph(&g)
                    .fragmenter(fragmenter.clone())
                    .backend(backend)
                    .build()
                    .unwrap();
                let mut applied = 0;
                for _ in 0..300 {
                    if applied >= 20 {
                        break;
                    }
                    let Some(update) = arb_update(&mut rng, sys.fragmentation()) else {
                        continue;
                    };
                    sys.update(&update).unwrap();
                    applied += 1;
                }
                assert!(applied >= 20, "case {case}: not enough applicable updates");

                // Oracle graph + from-scratch engine on the final network.
                let final_frag = sys.fragmentation().clone();
                let connections: Vec<Edge> = final_frag
                    .fragments()
                    .iter()
                    .flat_map(|f| f.edges().iter().copied())
                    .collect();
                let csr = CsrGraph::from_edges(g.nodes, &expand_connections(&connections, true));
                let mut fresh = System::builder()
                    .network(g.nodes, connections)
                    .fragmenter(Fragmenter::Prebuilt(final_frag))
                    .backend(Backend::Inline)
                    .build()
                    .unwrap();
                for x in 0..g.nodes as u32 {
                    for y in 0..g.nodes as u32 {
                        let (x, y) = (NodeId(x), NodeId(y));
                        let want = x == y || baseline::shortest_path_cost(&csr, x, y).is_some();
                        assert_eq!(
                            sys.connected(x, y),
                            want,
                            "case {case} {}: maintained index {x}->{y}",
                            sys.backend_name()
                        );
                        assert_eq!(
                            fresh.connected(x, y),
                            want,
                            "case {case}: rebuilt index {x}->{y}"
                        );
                    }
                }
            }
        }
    }
}

/// Pure-insert sequences never fall back to a full recompute, on either
/// backend (the acceptance contract of incremental insert maintenance).
#[test]
fn pure_insert_sequences_never_recompute() {
    for seed in 0..6u64 {
        let g = generate_general(
            &GeneralConfig {
                nodes: 24,
                target_edges: 50,
                ..Default::default()
            },
            seed,
        );
        for backend in [Backend::Inline, Backend::SiteThreads] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sys = System::builder()
                .graph(&g)
                .fragmenter(Fragmenter::Linear(LinearConfig {
                    fragments: 3,
                    ..Default::default()
                }))
                .backend(backend)
                .build()
                .unwrap();
            let mut applied = 0;
            for _ in 0..200 {
                if applied >= 15 {
                    break;
                }
                let frag = sys.fragmentation();
                let owner = rng.gen_index(frag.fragment_count());
                let nodes = frag.fragment(owner).nodes();
                if nodes.len() < 2 {
                    continue;
                }
                let a = nodes[rng.gen_index(nodes.len())];
                let b = nodes[rng.gen_index(nodes.len())];
                let report = sys
                    .update(&discset::NetworkUpdate::Insert {
                        edge: Edge::new(a, b, 1 + rng.gen_index(20) as u64),
                        owner,
                    })
                    .unwrap();
                assert!(
                    !report.full_recompute,
                    "seed {seed} {}: inserts are always incremental ({report:?})",
                    sys.backend_name()
                );
                applied += 1;
            }
            assert!(applied >= 15, "seed {seed}: not enough inserts");
        }
    }
}

/// The skeleton-overlay precompute (fragment-local sweeps + border
/// skeleton closure) produces *identical* complementary information to
/// the global-sweep reference — same `pair_count`, same per-site
/// shortcut tables, tuple for tuple — for every generator × fragmenter ×
/// scope.
#[test]
fn skeleton_precompute_equals_global_sweep() {
    use discset::closure::{ComplementaryInfo, ComplementaryScope};
    use discset::fragment::Fragmentation;

    fn assert_equal(csr: &CsrGraph, frag: &Fragmentation, label: &str) {
        for scope in [
            ComplementaryScope::PerDisconnectionSet,
            ComplementaryScope::PerFragmentBorder,
        ] {
            let skel = ComplementaryInfo::compute(csr, frag, scope, false);
            let glob = ComplementaryInfo::compute_global_sweep(csr, frag, scope, false);
            assert_eq!(
                skel.border_count(),
                glob.border_count(),
                "{label} {scope:?}: border count"
            );
            assert_eq!(
                skel.pair_count(),
                glob.pair_count(),
                "{label} {scope:?}: pair count"
            );
            for f in 0..frag.fragment_count() {
                assert_eq!(
                    skel.shortcuts(f),
                    glob.shortcuts(f),
                    "{label} {scope:?}: site {f} table"
                );
            }
        }
    }

    for seed in 0..8u64 {
        let g = if seed % 2 == 0 {
            generate_general(
                &GeneralConfig {
                    nodes: 30,
                    target_edges: 70,
                    ..Default::default()
                },
                seed,
            )
        } else {
            generate_transportation(
                &TransportationConfig {
                    clusters: 3,
                    nodes_per_cluster: 10,
                    target_edges_per_cluster: 25,
                    ..TransportationConfig::default()
                },
                seed,
            )
        };
        let csr = g.closure_graph();
        let el = g.edge_list();
        let lin = linear_sweep(
            &el,
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        assert_equal(&csr, &lin, &format!("seed {seed} linear"));
        let cen = center_based(
            &el,
            &CenterConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        assert_equal(&csr, &cen, &format!("seed {seed} center"));
        if let Some(labels) = &g.cluster_of {
            let sem = discset::fragment::semantic::by_labels(
                g.nodes,
                &g.connections,
                labels,
                (*labels.iter().max().unwrap() + 1) as usize,
                discset::fragment::CrossingPolicy::LowerBlock,
            )
            .unwrap();
            assert_equal(&csr, &sem, &format!("seed {seed} semantic"));
        }
    }

    // A *cyclic* fragmentation graph (three fragments in a triangle):
    // border pairs can be locally disconnected yet globally connected
    // through the third fragment — the skeleton closure, not a global
    // re-sweep, must supply those distances under `PerFragmentBorder`.
    let edges = |pairs: &[(u32, u32)]| -> Vec<Edge> {
        pairs
            .iter()
            .flat_map(|&(a, b)| {
                [
                    Edge::unit(NodeId(a), NodeId(b)),
                    Edge::unit(NodeId(b), NodeId(a)),
                ]
            })
            .collect()
    };
    let all = edges(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
    let csr = CsrGraph::from_edges(6, &all);
    let tri = Fragmentation::new(
        6,
        vec![
            edges(&[(0, 1), (1, 2)]),
            edges(&[(2, 3), (3, 4)]),
            edges(&[(4, 5), (5, 0)]),
        ],
        vec![vec![], vec![], vec![]],
    );
    assert!(
        !tri.fragmentation_graph().is_acyclic(),
        "triangle fragmentation graph is cyclic"
    );
    assert_equal(&csr, &tri, "triangle");
    // And the deployed engine still answers exactly on it.
    let engine =
        DisconnectionSetEngine::build(csr.clone(), tri, true, EngineConfig::default()).unwrap();
    for x in 0..6u32 {
        for y in 0..6u32 {
            assert_eq!(
                engine.shortest_path(NodeId(x), NodeId(y)).cost,
                baseline::shortest_path_cost(&csr, NodeId(x), NodeId(y)),
                "triangle {x}->{y}"
            );
        }
    }
}

/// One reader-thread observation: query endpoints, served cost, epoch.
type EpochObservation = (NodeId, NodeId, Option<u64>, u64);

/// Concurrent consistency of the serve subsystem: reader threads run
/// against a live update stream, and every answer must match the
/// centralized oracle for the *epoch it was served at* — i.e. the
/// network state after exactly `epoch` updates. Answers are never torn
/// between a pre- and post-update state, across generators × fragmenter
/// families.
#[test]
fn concurrent_readers_match_their_epoch_oracle() {
    use discset::closure::api::apply_update;
    use discset::gen::output::expand_connections;

    const UPDATES: usize = 10;
    const READERS: u32 = 3;

    let mut case = 0u64;
    for seed in 0..2u64 {
        let g = if seed % 2 == 0 {
            generate_general(
                &GeneralConfig {
                    nodes: 26,
                    target_edges: 60,
                    ..Default::default()
                },
                seed,
            )
        } else {
            generate_transportation(
                &TransportationConfig {
                    clusters: 3,
                    nodes_per_cluster: 9,
                    target_edges_per_cluster: 22,
                    ..TransportationConfig::default()
                },
                seed,
            )
        };
        for fragmenter in [
            Fragmenter::Linear(LinearConfig {
                fragments: 3,
                ..Default::default()
            }),
            Fragmenter::Center(CenterConfig {
                fragments: 3,
                ..Default::default()
            }),
        ] {
            case += 1;
            let sys = System::builder()
                .graph(&g)
                .fragmenter(fragmenter)
                .build()
                .unwrap();

            // Script the update stream up front and precompute the
            // oracle graph for every epoch prefix: epoch e == the
            // network after the first e updates.
            let mut rng = StdRng::seed_from_u64(0x5EB7E ^ case);
            let mut frag_sim = sys.fragmentation().clone();
            let mut graph_sim = closure_graph(
                g.nodes,
                &frag_sim
                    .fragments()
                    .iter()
                    .flat_map(|f| f.edges().iter().copied())
                    .collect::<Vec<_>>(),
            );
            let mut updates = Vec::with_capacity(UPDATES);
            let mut oracles = vec![graph_sim.clone()];
            for _ in 0..400 {
                if updates.len() >= UPDATES {
                    break;
                }
                let Some(u) = arb_update(&mut rng, &frag_sim) else {
                    continue;
                };
                match apply_update(&graph_sim, &mut frag_sim, true, &u) {
                    Ok(Some(next)) => {
                        graph_sim = next;
                        updates.push(u);
                        oracles.push(graph_sim.clone());
                    }
                    // Skip structural no-ops so each scripted update
                    // advances the epoch by exactly one.
                    Ok(None) | Err(_) => continue,
                }
            }
            assert_eq!(updates.len(), UPDATES, "case {case}: script too short");
            {
                // expand_connections is what the builder used; the
                // fragment-union rebuild must agree with it at epoch 0.
                let direct =
                    CsrGraph::from_edges(g.nodes, &expand_connections(&g.connections, true));
                for x in 0..4u32 {
                    assert_eq!(
                        baseline::shortest_path_cost(&oracles[0], NodeId(x), NodeId(x + 1)),
                        baseline::shortest_path_cost(&direct, NodeId(x), NodeId(x + 1)),
                        "case {case}: epoch-0 oracle"
                    );
                }
            }

            let server = sys.serve(READERS as usize);
            let stop = std::sync::atomic::AtomicBool::new(false);
            let records: Vec<Vec<EpochObservation>> = std::thread::scope(|s| {
                let server = &server;
                let stop = &stop;
                let handles: Vec<_> = (0..READERS)
                    .map(|t| {
                        s.spawn(move || {
                            let mut rng = StdRng::seed_from_u64(0xBEEF ^ (case << 8) ^ t as u64);
                            let mut out = Vec::new();
                            let mut one = |out: &mut Vec<EpochObservation>| {
                                let x = NodeId(rng.gen_index(g.nodes) as u32);
                                let y = NodeId(rng.gen_index(g.nodes) as u32);
                                if rng.gen_index(4) == 0 {
                                    // Batch path: all answers of a job
                                    // share one epoch.
                                    let reqs =
                                        vec![QueryRequest::new(x, y), QueryRequest::new(y, x)];
                                    let served = server.query_batch(&reqs).expect("healthy pool");
                                    for (r, a) in reqs.iter().zip(&served.answers) {
                                        out.push((r.source, r.target, a.cost, served.epoch));
                                    }
                                } else {
                                    let served = server.query(x, y).expect("healthy pool");
                                    out.push((x, y, served.answer.cost, served.epoch));
                                }
                            };
                            // Race phase: query until the update stream
                            // is done, however long scheduling lets it
                            // take (bounded only by a safety valve).
                            while !stop.load(std::sync::atomic::Ordering::Relaxed)
                                && out.len() < 100_000
                            {
                                one(&mut out);
                            }
                            // Settled phase: a deterministic tail of
                            // queries guaranteed to observe the final
                            // epoch.
                            for _ in 0..20 {
                                one(&mut out);
                            }
                            out
                        })
                    })
                    .collect();
                // The update stream runs while the readers hammer away.
                for u in &updates {
                    let served = server.update(u).unwrap();
                    assert!(
                        served.epoch >= 1 && served.epoch <= UPDATES as u64,
                        "case {case}: epoch {} out of range",
                        served.epoch
                    );
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(server.epoch(), UPDATES as u64, "case {case}");
            let stats = server.shutdown();
            assert_eq!(stats.updates, UPDATES as u64, "case {case}");

            let mut checked = 0usize;
            let mut post_update = 0usize;
            for (t, rows) in records.iter().enumerate() {
                for &(x, y, cost, epoch) in rows {
                    assert!(
                        (epoch as usize) < oracles.len(),
                        "case {case} reader {t}: epoch {epoch} never published"
                    );
                    let want = if x == y {
                        Some(0)
                    } else {
                        baseline::shortest_path_cost(&oracles[epoch as usize], x, y)
                    };
                    assert_eq!(
                        cost, want,
                        "case {case} reader {t}: {x}->{y} at epoch {epoch}"
                    );
                    checked += 1;
                    if epoch > 0 {
                        post_update += 1;
                    }
                }
            }
            assert!(checked >= 30, "case {case}: only {checked} answers checked");
            // The race is only interesting if some answers really were
            // served from a post-update epoch.
            assert!(
                post_update > 0,
                "case {case}: no reader ever observed an updated epoch"
            );
        }
    }
}

/// Structural sharing across snapshot epochs: after maintaining a cloned
/// successor snapshot, every site *not* touched by the update still
/// shares — `Arc::ptr_eq` — its augmented graph, real-hop set and
/// shortcut table with the predecessor epoch, on both fragmenter
/// families (linear sweep and center growth). This is the invariant that
/// makes the serve writer's per-epoch publication O(touched sites).
#[test]
fn untouched_sites_stay_arc_shared_across_epochs() {
    use discset::closure::snapshot::EngineSnapshot;
    use discset::graph::ScratchDijkstra;
    use std::sync::Arc;

    let mut scratch = ScratchDijkstra::new();
    for seed in 0..6u64 {
        let g = if seed % 2 == 0 {
            generate_general(
                &GeneralConfig {
                    nodes: 26,
                    target_edges: 60,
                    ..Default::default()
                },
                seed,
            )
        } else {
            generate_transportation(
                &TransportationConfig {
                    clusters: 3,
                    nodes_per_cluster: 9,
                    target_edges_per_cluster: 22,
                    ..TransportationConfig::default()
                },
                seed,
            )
        };
        let el = g.edge_list();
        let fragmentations = [
            (
                "linear",
                linear_sweep(
                    &el,
                    &LinearConfig {
                        fragments: 4,
                        ..Default::default()
                    },
                )
                .unwrap()
                .fragmentation,
            ),
            (
                "center",
                center_based(
                    &el,
                    &CenterConfig {
                        fragments: 4,
                        ..Default::default()
                    },
                )
                .unwrap()
                .fragmentation,
            ),
        ];
        for (family, frag) in fragmentations {
            let label = format!("seed {seed} {family}");
            let base =
                EngineSnapshot::build(g.closure_graph(), frag, true, EngineConfig::default())
                    .unwrap();
            let mut rng = StdRng::seed_from_u64(0x5AA6 ^ seed << 4);
            let mut prev = base;
            let mut applied = 0;
            for _ in 0..200 {
                if applied >= 10 {
                    break;
                }
                let Some(update) = arb_update(&mut rng, prev.fragmentation()) else {
                    continue;
                };
                // The successor epoch, exactly as the serve writer makes
                // one: clone (O(sites)) then maintain in place.
                let mut next = prev.clone();
                let m = match next.maintain_cow(&update, &mut scratch) {
                    Ok(m) => m,
                    Err(_) => continue, // e.g. degenerate insert target
                };
                if m.owner.is_none() {
                    continue; // structural no-op: nothing to check
                }
                applied += 1;
                let sites = prev.site_count();
                for f in 0..sites {
                    let touched = m.touched_sites.contains(&f);
                    let shared_aug =
                        Arc::ptr_eq(prev.augmented_handle(f), next.augmented_handle(f));
                    let shared_hops =
                        Arc::ptr_eq(prev.real_hops_handle(f), next.real_hops_handle(f));
                    let shared_table = Arc::ptr_eq(
                        prev.complementary().shortcuts_handle(f),
                        next.complementary().shortcuts_handle(f),
                    );
                    if !touched {
                        assert!(
                            shared_aug && shared_hops && shared_table,
                            "{label}: untouched site {f} must stay shared after \
                             {update:?} (aug {shared_aug}, hops {shared_hops}, \
                             table {shared_table}; touched {:?})",
                            m.touched_sites
                        );
                    }
                }
                // Regression: a touched site's replaced components must
                // NOT be shared — the owner's augmented graph and
                // real-hop set are always rebuilt, and every site whose
                // shortcut table changed carries a fresh table.
                let owner = m.owner.unwrap();
                assert!(
                    !Arc::ptr_eq(prev.augmented_handle(owner), next.augmented_handle(owner)),
                    "{label}: owner {owner}'s augmented graph must be rebuilt"
                );
                assert!(
                    !Arc::ptr_eq(prev.real_hops_handle(owner), next.real_hops_handle(owner)),
                    "{label}: owner {owner}'s real hops must be rebuilt"
                );
                for &f in &m.shortcut_sites {
                    assert!(
                        !Arc::ptr_eq(
                            prev.complementary().shortcuts_handle(f),
                            next.complementary().shortcuts_handle(f),
                        ),
                        "{label}: site {f}'s shortcut table changed and must be detached"
                    );
                }
                prev = next;
            }
            assert!(applied >= 10, "{label}: not enough applicable updates");
        }
    }
}

/// Complementary shortcut costs obey the triangle inequality with the
/// global metric (they ARE global distances).
#[test]
fn shortcut_costs_are_global_distances() {
    for seed in 0..CASES {
        let (n, conns, coords) = arb_graph(seed);
        let el = EdgeList::new(n, conns.clone()).with_coords(coords);
        let frag = linear_sweep(
            &el,
            &LinearConfig {
                fragments: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .fragmentation;
        let csr = closure_graph(n, &conns);
        let comp = discset::closure::ComplementaryInfo::compute(
            &csr,
            &frag,
            discset::closure::ComplementaryScope::PerFragmentBorder,
            false,
        );
        for f in 0..frag.fragment_count() {
            for e in comp.shortcuts(f) {
                assert_eq!(
                    Some(e.cost),
                    baseline::shortest_path_cost(&csr, e.src, e.dst),
                    "seed {seed}"
                );
            }
        }
    }
}

/// Min-plus composition is associative.
#[test]
fn min_plus_composition_is_associative() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rel = |name: &'static str, lo: u32, hi: u32| {
            let rows: Vec<PathTuple> = (0..1 + rng.gen_index(11))
                .map(|_| {
                    PathTuple::new(
                        NodeId(lo + rng.gen_index(4) as u32),
                        NodeId(hi + rng.gen_index(4) as u32),
                        1 + rng.gen_index(19) as u64,
                    )
                })
                .collect();
            Relation::from_rows(name, rows)
        };
        let (a, b, c) = (rel("a", 0, 4), rel("b", 4, 8), rel("c", 8, 12));
        let left = compose_min_plus(&compose_min_plus(&a, &b), &c);
        let right = compose_min_plus(&a, &compose_min_plus(&b, &c));
        assert_eq!(left.rows(), right.rows(), "seed {seed}");
    }
}

/// Semi-naive and naive closure agree.
#[test]
fn seminaive_equals_naive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xC2B2_AE35));
        let rows: Vec<PathTuple> = (0..1 + rng.gen_index(19))
            .map(|_| {
                PathTuple::new(
                    NodeId(rng.gen_index(8) as u32),
                    NodeId(rng.gen_index(8) as u32),
                    1 + rng.gen_index(8) as u64,
                )
            })
            .collect();
        let rel = Relation::from_rows("R", rows);
        let (a, _) = tc::seminaive_closure(&rel, None);
        let (b, _) = tc::naive_closure(&rel, None);
        assert_eq!(a.rows(), b.rows(), "seed {seed}");
    }
}

/// Closure-strategy equivalence: naive iteration, semi-naive iteration,
/// smart squaring and the fragmented-parallel bulk engine all
/// materialize the *identical* relation — tuple for tuple — across
/// generators × {linear, center} fragmenters × thread counts. And the
/// materialized tuples are true distances: on sampled pairs they equal
/// the per-query engine's `query_batch` answers.
#[test]
fn all_closure_strategies_materialize_the_same_relation() {
    use discset::relation::bulk::{FragmentPartition, MaterializeConfig, MaterializeEngine};

    for seed in 0..6u64 {
        let g = if seed % 2 == 0 {
            generate_general(
                &GeneralConfig {
                    nodes: 18,
                    target_edges: 40,
                    ..Default::default()
                },
                seed,
            )
        } else {
            generate_transportation(
                &TransportationConfig {
                    clusters: 3,
                    nodes_per_cluster: 7,
                    target_edges_per_cluster: 16,
                    ..TransportationConfig::default()
                },
                seed,
            )
        };
        let el = g.edge_list();
        let fragmentations = [
            (
                "linear",
                linear_sweep(
                    &el,
                    &LinearConfig {
                        fragments: 3,
                        ..Default::default()
                    },
                )
                .unwrap()
                .fragmentation,
            ),
            (
                "center",
                center_based(
                    &el,
                    &CenterConfig {
                        fragments: 3,
                        ..Default::default()
                    },
                )
                .unwrap()
                .fragmentation,
            ),
        ];
        for (family, frag) in fragmentations {
            let label = format!("seed {seed} {family}");
            let partition = FragmentPartition::new(&frag, g.symmetric);
            let union = partition.union_relation();
            let (seminaive, _) = tc::seminaive_closure(&union, None);
            let (naive, _) = tc::naive_closure(&union, None);
            let (smart, _) = tc::smart_closure(&union);
            assert_eq!(seminaive.rows(), naive.rows(), "{label}: naive");
            assert_eq!(seminaive.rows(), smart.rows(), "{label}: smart");
            for threads in [1usize, 3] {
                let engine = MaterializeEngine::new(
                    partition.clone(),
                    MaterializeConfig::with_threads(threads),
                );
                let (bulk, stats) = engine.materialize().unwrap();
                assert_eq!(
                    bulk.rows(),
                    seminaive.rows(),
                    "{label}: bulk with {threads} threads"
                );
                assert_eq!(stats.tc.result_tuples, seminaive.len(), "{label}");
                assert_eq!(stats.per_round.len(), stats.rounds, "{label}");
            }

            // Oracle: the materialized tuples are the per-query engine's
            // distances on sampled distinct pairs.
            let mut sys = System::builder()
                .graph(&g)
                .fragmenter(Fragmenter::Prebuilt(frag))
                .build()
                .unwrap();
            let mut rng = StdRng::seed_from_u64(0xD15C ^ (seed << 3));
            let mut pairs = Vec::new();
            while pairs.len() < 12 {
                let x = NodeId(rng.gen_index(g.nodes) as u32);
                let y = NodeId(rng.gen_index(g.nodes) as u32);
                if x != y {
                    pairs.push((x, y));
                }
            }
            let requests: Vec<QueryRequest> = pairs
                .iter()
                .map(|&(x, y)| QueryRequest::new(x, y))
                .collect();
            let batch = sys.query_batch(&requests);
            for (&(x, y), answer) in pairs.iter().zip(&batch.answers) {
                assert_eq!(
                    seminaive.cost_of(x, y),
                    answer.cost,
                    "{label}: materialized {x}->{y} vs query_batch"
                );
            }
        }
    }
}

/// Generators are deterministic per seed.
#[test]
fn generator_determinism() {
    for seed in (0..500).step_by(7) {
        let cfg = GeneralConfig {
            nodes: 30,
            target_edges: 60,
            ..Default::default()
        };
        let a = generate_general(&cfg, seed);
        let b = generate_general(&cfg, seed);
        assert_eq!(a.connections, b.connections, "seed {seed}");
        assert_eq!(a.coords, b.coords, "seed {seed}");
    }
}
