//! Update maintenance contracts, pinned on hand-built topologies:
//! adversarial deletions (bridges, disconnection-set crossings, last
//! parallel edges) must fall back with the right reason and stay exact,
//! and the `UpdateReport` / `BatchStats` accounting must produce *exact*
//! counts on a 3-fragment line graph — on both backends.

use discset::closure::baseline;
use discset::fragment::Fragmentation;
use discset::graph::{CsrGraph, Edge, NodeId};
use discset::{
    Backend, FallbackReason, Fragmenter, NetworkUpdate, QueryRequest, System, TcEngine,
    UpdateReport,
};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn edges(list: &[(u32, u32, u64)]) -> Vec<Edge> {
    list.iter()
        .map(|&(a, b, c)| Edge::new(NodeId(a), NodeId(b), c))
        .collect()
}

/// Deploy both backends over an explicit fragment list.
fn both_backends(node_count: usize, fragments: Vec<Vec<Edge>>) -> Vec<System> {
    [Backend::Inline, Backend::SiteThreads]
        .into_iter()
        .map(|backend| {
            let frag =
                Fragmentation::new(node_count, fragments.clone(), vec![vec![]; fragments.len()]);
            System::builder()
                .network(node_count, fragments.concat())
                .fragmenter(Fragmenter::Prebuilt(frag))
                .backend(backend)
                .build()
                .unwrap()
        })
        .collect()
}

/// The current global closure graph of a maintained system (union of its
/// fragments, symmetric expansion).
fn current_graph(sys: &System) -> CsrGraph {
    let connections: Vec<Edge> = sys
        .fragmentation()
        .fragments()
        .iter()
        .flat_map(|f| f.edges().iter().copied())
        .collect();
    CsrGraph::from_edges(
        sys.fragmentation().node_count(),
        &discset::gen::output::expand_connections(&connections, true),
    )
}

fn assert_exact_everywhere(sys: &mut System, label: &str) {
    let csr = current_graph(sys);
    let count = csr.node_count() as u32;
    for x in 0..count {
        for y in 0..count {
            assert_eq!(
                sys.shortest_path(n(x), n(y)).cost,
                baseline::shortest_path_cost(&csr, n(x), n(y)),
                "{label}: {x}->{y}"
            );
        }
    }
}

/// Line 0-1-2-3-4-5-6 (unit costs) in three fragments sharing nodes 2
/// and 4 — the hand-built accounting fixture. Site 1 stores exactly two
/// shortcuts: (2,4) and (4,2).
fn three_fragment_line() -> Vec<Vec<Edge>> {
    vec![
        edges(&[(0, 1, 1), (1, 2, 1)]),
        edges(&[(2, 3, 1), (3, 4, 1)]),
        edges(&[(4, 5, 1), (5, 6, 1)]),
    ]
}

/// Like the line, but fragment 1 has a costlier parallel corridor
/// 2-8-4, so deleting 3-4 re-routes instead of disconnecting.
fn line_with_detour() -> Vec<Vec<Edge>> {
    vec![
        edges(&[(0, 1, 1), (1, 2, 1)]),
        edges(&[(2, 3, 1), (3, 4, 1), (2, 8, 2), (8, 4, 2)]),
        edges(&[(4, 5, 1), (5, 6, 1)]),
    ]
}

#[test]
fn bridge_deletion_disconnects_and_falls_back() {
    for mut sys in both_backends(7, three_fragment_line()) {
        let name = sys.backend_name();
        assert!(sys.connected(n(0), n(6)), "{name}: connected before");
        // (3,4) is a bridge: its removal cuts fragments 0/1 off from 2.
        let report = sys
            .update(&NetworkUpdate::Remove {
                src: n(3),
                dst: n(4),
                owner: 1,
            })
            .unwrap();
        assert!(report.full_recompute, "{name}: {report:?}");
        assert_eq!(
            report.fallback_reason,
            Some(FallbackReason::Disconnected),
            "{name}"
        );
        assert_eq!(
            report.sites_touched, 3,
            "{name}: fallback reships all sites"
        );
        assert!(!sys.connected(n(0), n(6)), "{name}: disconnected after");
        assert!(sys.connected(n(0), n(3)), "{name}: left half intact");
        assert!(sys.connected(n(4), n(6)), "{name}: right half intact");
        assert_exact_everywhere(&mut sys, name);
    }
}

#[test]
fn disconnection_set_crossing_deletion_falls_back() {
    // Fragment 1 connects border 2 to border 4 both via node 3 and via a
    // direct (costlier) edge; deleting the direct edge changes nothing
    // except removing a DS-crossing connection.
    let mut frags = three_fragment_line();
    frags[1].push(Edge::new(n(2), n(4), 5));
    for mut sys in both_backends(7, frags) {
        let name = sys.backend_name();
        let report = sys
            .update(&NetworkUpdate::Remove {
                src: n(2),
                dst: n(4),
                owner: 1,
            })
            .unwrap();
        assert!(report.full_recompute, "{name}: {report:?}");
        assert_eq!(
            report.fallback_reason,
            Some(FallbackReason::DisconnectionSetCrossing),
            "{name}"
        );
        assert_eq!(sys.shortest_path(n(0), n(6)).cost, Some(6), "{name}");
        assert_exact_everywhere(&mut sys, name);
    }
}

#[test]
fn deleting_last_parallel_edge_between_border_nodes_falls_back() {
    // Fragment 1 is nothing but two parallel 2-4 connections; removing
    // the pair (one call removes every matching tuple) severs the only
    // crossing and must report the crossing fallback, with answers exact.
    let frags = vec![
        edges(&[(0, 1, 1), (1, 2, 1)]),
        edges(&[(2, 4, 5), (2, 4, 7)]),
        edges(&[(4, 5, 1), (5, 6, 1)]),
    ];
    for mut sys in both_backends(7, frags) {
        let name = sys.backend_name();
        assert_eq!(sys.shortest_path(n(0), n(6)).cost, Some(9), "{name}");
        let report = sys
            .update(&NetworkUpdate::Remove {
                src: n(2),
                dst: n(4),
                owner: 1,
            })
            .unwrap();
        assert!(report.full_recompute, "{name}: {report:?}");
        assert_eq!(
            report.fallback_reason,
            Some(FallbackReason::DisconnectionSetCrossing),
            "{name}"
        );
        assert!(!sys.connected(n(2), n(4)), "{name}: crossing severed");
        assert!(!sys.connected(n(0), n(6)), "{name}");
        assert_exact_everywhere(&mut sys, name);
    }
}

#[test]
fn exact_accounting_on_the_line_graph() {
    // Fragment 1 stores the only shortcuts: (2,4) and (4,2), both cost 2.
    for mut sys in both_backends(9, line_with_detour()) {
        let name = sys.backend_name();
        assert_eq!(sys.shortest_path(n(0), n(6)).cost, Some(6), "{name}");

        // Deleting 3-4 re-routes through 2-8-4: both shortcuts repaired
        // upward (2 -> 4), only site 1 touched, its 2 tuples reshipped.
        let report = sys
            .update(&NetworkUpdate::Remove {
                src: n(3),
                dst: n(4),
                owner: 1,
            })
            .unwrap();
        assert_eq!(
            report,
            UpdateReport {
                shortcuts_improved: 0,
                shortcuts_repaired: 2,
                full_recompute: false,
                fallback_reason: None,
                sites_touched: 1,
                tuples_shipped: 2,
            },
            "{name}: delete accounting"
        );
        assert_eq!(sys.shortest_path(n(0), n(6)).cost, Some(8), "{name}");

        // Re-inserting 3-4 improves both shortcuts back down (4 -> 2).
        let report = sys
            .update(&NetworkUpdate::Insert {
                edge: Edge::new(n(3), n(4), 1),
                owner: 1,
            })
            .unwrap();
        assert_eq!(
            report,
            UpdateReport {
                shortcuts_improved: 2,
                shortcuts_repaired: 0,
                full_recompute: false,
                fallback_reason: None,
                sites_touched: 1,
                tuples_shipped: 2,
            },
            "{name}: insert accounting"
        );
        assert_eq!(sys.shortest_path(n(0), n(6)).cost, Some(6), "{name}");

        // Removing a connection that never existed is a no-op.
        let report = sys
            .update(&NetworkUpdate::Remove {
                src: n(0),
                dst: n(6),
                owner: 0,
            })
            .unwrap();
        assert_eq!(report, UpdateReport::noop(), "{name}");
        assert_exact_everywhere(&mut sys, name);
    }
}

#[test]
fn non_fallback_sequences_never_recompute() {
    // A delete/insert ping-pong on the detour line: every step must stay
    // incremental (the acceptance contract for non-fallback deletes).
    for mut sys in both_backends(9, line_with_detour()) {
        let name = sys.backend_name();
        for round in 0..4 {
            let report = sys
                .update(&NetworkUpdate::Remove {
                    src: n(3),
                    dst: n(4),
                    owner: 1,
                })
                .unwrap();
            assert!(!report.full_recompute, "{name} round {round}: {report:?}");
            let report = sys
                .update(&NetworkUpdate::Insert {
                    edge: Edge::new(n(3), n(4), 1),
                    owner: 1,
                })
                .unwrap();
            assert!(!report.full_recompute, "{name} round {round}: {report:?}");
        }
        assert_eq!(sys.shortest_path(n(0), n(6)).cost, Some(6), "{name}");
    }
}

#[test]
fn batch_stats_amortization_exact_counts() {
    // Three cross-line queries share one fragment pair and one interior
    // segment: 1 plan computed + 2 reused, 7 segments computed (3 + 2 +
    // 2) + 2 reused, amortization (2 + 2) / (3 + 9) = 1/3.
    for mut sys in both_backends(7, three_fragment_line()) {
        let name = sys.backend_name();
        let requests: Vec<QueryRequest> = [(0u32, 6u32), (1, 5), (0, 5)]
            .iter()
            .map(|&(a, b)| QueryRequest::new(n(a), n(b)))
            .collect();
        let batch = sys.query_batch(&requests);
        assert_eq!(batch.answers[0].cost, Some(6), "{name}");
        assert_eq!(batch.answers[1].cost, Some(4), "{name}");
        assert_eq!(batch.answers[2].cost, Some(5), "{name}");
        let s = batch.stats;
        assert_eq!(s.queries, 3, "{name}");
        assert_eq!(s.plans_computed, 1, "{name}");
        assert_eq!(s.plans_reused, 2, "{name}");
        assert_eq!(s.segments_computed, 7, "{name}");
        assert_eq!(s.segments_reused, 2, "{name}");
        assert!(
            (s.amortization() - 1.0 / 3.0).abs() < 1e-12,
            "{name}: amortization {}",
            s.amortization()
        );

        // A single query shares nothing: amortization is exactly 0.
        let single = sys.query_batch(&[QueryRequest::new(n(0), n(6))]);
        assert_eq!(single.stats.plans_computed, 1, "{name}");
        assert_eq!(single.stats.plans_reused, 0, "{name}");
        assert_eq!(single.stats.segments_computed, 3, "{name}");
        assert_eq!(single.stats.segments_reused, 0, "{name}");
        assert_eq!(single.stats.amortization(), 0.0, "{name}");

        // An empty batch divides nothing by nothing and reports 0.
        let empty = sys.query_batch(&[]);
        assert_eq!(empty.stats.amortization(), 0.0, "{name}");
        assert!(empty.answers.is_empty(), "{name}");
    }
}
