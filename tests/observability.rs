//! Property suite for the `ds_obs` integration: span-set completeness
//! under faults, and the disarmed-observability oracle.
//!
//! For every backend × fault seed, a serve pool with an armed
//! [`Observability`] bundle runs a deterministic operation mix while
//! the seed's [`FaultScenario`] fires. The properties under test:
//!
//! - **Span completeness**: every successfully answered request leaves
//!   exactly one finished trace carrying a `QueueWait` span plus
//!   exactly one resolution span (`CacheHit`, `Coalesced`, or
//!   `Evaluation`); every applied update leaves an `Applied` trace with
//!   `WriterApply` + `Publication` spans; every request the fault plan
//!   doomed leaves a `Failed`/`Shed` trace. Nothing is silently
//!   untraced, even while workers and the writer are being killed.
//! - **Observer effect is nil**: a disarmed server fed the identical
//!   operation sequence under an identical fault plan returns
//!   answer-for-answer identical results — arming observability must
//!   never change what the system computes.

use std::collections::BTreeMap;
use std::sync::Arc;

use discset::closure::ClosureError;
use discset::fragment::linear::LinearConfig;
use discset::gen::deterministic::grid;
use discset::graph::{Edge, NodeId};
use discset::obs::{Stage, TraceOutcome};
use discset::serve::{FaultScenario, FaultUniverse, ServeConfig, ServeError, Server};
use discset::{Backend, Fragmenter, NetworkUpdate, Observability, System, TcEngine};

/// SplitMix64 — the traffic is as reproducible as the fault plan.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn n(i: u64, nodes: u64) -> NodeId {
    NodeId((i % nodes) as u32)
}

/// What one operation against the server produced, reduced to the bits
/// an oracle can compare: the answer cost, or the typed error name.
#[derive(Debug, PartialEq, Eq)]
enum OpResult {
    Answer(Option<u64>),
    Applied(u64),
    QueryErr(&'static str),
    UpdateErr(&'static str),
}

/// Drive the deterministic 60-op mix (an update every 10th op) and
/// record each outcome. Single worker + sequential traffic keep the
/// fault plan's nth-occurrence counters aligned across runs.
fn run_ops(server: &Server, seed: u64, nodes: u64) -> Vec<OpResult> {
    let f0 = server.snapshot().fragmentation().fragment(0).clone();
    let (a, b) = (f0.nodes()[0], *f0.nodes().last().expect("non-empty"));
    let mut rng = seed ^ 0xB0B5;
    let mut toggle_in = true;
    let mut out = Vec::with_capacity(60);
    for op in 0..60u32 {
        if op % 10 == 9 {
            let update = if toggle_in {
                NetworkUpdate::Insert {
                    edge: Edge::new(a, b, 1),
                    owner: 0,
                }
            } else {
                NetworkUpdate::Remove {
                    src: a,
                    dst: b,
                    owner: 0,
                }
            };
            out.push(match server.update(&update) {
                Ok(served) => {
                    toggle_in = !toggle_in;
                    OpResult::Applied(served.epoch)
                }
                Err(ClosureError::WriterRestarted) => OpResult::UpdateErr("restarted"),
                Err(ClosureError::WriterDown) => OpResult::UpdateErr("down"),
                Err(e) => panic!("seed {seed}: unexpected update error {e}"),
            });
            continue;
        }
        let (x, y) = (n(splitmix(&mut rng), nodes), n(splitmix(&mut rng), nodes));
        out.push(match server.query(x, y) {
            Ok(served) => OpResult::Answer(served.answer.cost),
            Err(ServeError::Request(ClosureError::WorkerFailed)) => OpResult::QueryErr("worker"),
            Err(e) => panic!("seed {seed}: unexpected query error {e}"),
        });
    }
    out
}

fn system(backend: Backend) -> System {
    System::builder()
        .graph(&grid(9, 4))
        .fragmenter(Fragmenter::Linear(LinearConfig {
            fragments: 3,
            ..Default::default()
        }))
        .backend(backend)
        .build()
        .expect("valid grid system")
}

/// Stages that resolve a read request; every answered trace must carry
/// exactly one.
fn is_resolution(stage: &Stage) -> bool {
    matches!(
        stage,
        Stage::CacheHit | Stage::Coalesced | Stage::Evaluation | Stage::ReachIndex
    )
}

#[test]
fn span_sets_are_complete_across_backends_and_fault_seeds() {
    let universe = FaultUniverse {
        workers: 1,
        sites: 0,
        fragments: 0,
    };
    let nodes = grid(9, 4).nodes as u64;
    for backend in [Backend::Inline, Backend::SiteThreads] {
        for seed in 0..6u64 {
            let scenario = FaultScenario::from_seed(seed, &universe);
            let obs = Observability::armed();
            let sys = system(backend);
            let mut cfg = ServeConfig::with_workers(1);
            cfg.fault = Some(Arc::new(scenario.plan(&universe)));
            cfg.obs = Some(Arc::clone(&obs));
            let server = sys.serve_with(cfg);
            let results = run_ops(&server, seed, nodes);
            server.shutdown();

            let mut expect: BTreeMap<&str, usize> = BTreeMap::new();
            for r in &results {
                *expect
                    .entry(match r {
                        OpResult::Answer(_) => "answered",
                        OpResult::Applied(_) => "applied",
                        OpResult::QueryErr(_) => "failed",
                        OpResult::UpdateErr(_) => "failed",
                    })
                    .or_default() += 1;
            }

            let traces = obs.tracer().recent(usize::MAX);
            let mut got: BTreeMap<&str, usize> = BTreeMap::new();
            for t in &traces {
                match t.outcome {
                    TraceOutcome::Answered | TraceOutcome::Unreachable => {
                        *got.entry("answered").or_default() += 1;
                        assert!(
                            t.span(Stage::QueueWait).is_some()
                                || t.span(Stage::ReachIndex).is_some(),
                            "{backend:?} seed {seed}: answered trace without admission: {t}"
                        );
                        let resolutions =
                            t.spans.iter().filter(|s| is_resolution(&s.stage)).count();
                        assert_eq!(
                            resolutions, 1,
                            "{backend:?} seed {seed}: {resolutions} resolution spans: {t}"
                        );
                        for s in &t.spans {
                            assert!(
                                s.dur_ns <= t.total_ns.saturating_add(1_000_000),
                                "{backend:?} seed {seed}: span outlives its request: {t}"
                            );
                        }
                    }
                    TraceOutcome::Applied => {
                        *got.entry("applied").or_default() += 1;
                        assert!(
                            t.span(Stage::WriterApply).is_some()
                                && t.span(Stage::Publication).is_some(),
                            "{backend:?} seed {seed}: applied trace missing writer spans: {t}"
                        );
                    }
                    TraceOutcome::Failed | TraceOutcome::Shed => {
                        *got.entry("failed").or_default() += 1;
                    }
                }
            }
            assert_eq!(
                got, expect,
                "{backend:?} seed {seed}: trace outcomes diverge from observed op results"
            );
        }
    }
}

/// Arming observability must not change a single answer: the disarmed
/// twin (same backend, same seed, its own copy of the same fault plan)
/// is the oracle.
#[test]
fn disarmed_server_is_an_exact_oracle_for_the_armed_one() {
    let universe = FaultUniverse {
        workers: 1,
        sites: 0,
        fragments: 0,
    };
    let nodes = grid(9, 4).nodes as u64;
    for backend in [Backend::Inline, Backend::SiteThreads] {
        for seed in 0..6u64 {
            let scenario = FaultScenario::from_seed(seed, &universe);
            let mut runs = Vec::new();
            for armed in [true, false] {
                let sys = system(backend);
                let mut cfg = ServeConfig::with_workers(1);
                cfg.fault = Some(Arc::new(scenario.plan(&universe)));
                if armed {
                    cfg.obs = Some(Observability::armed());
                }
                let server = sys.serve_with(cfg);
                runs.push(run_ops(&server, seed, nodes));
                server.shutdown();
            }
            assert_eq!(
                runs[0], runs[1],
                "{backend:?} seed {seed}: arming observability changed the answers"
            );
        }
    }
}

/// The machine backend traces direct engine queries through the same
/// bundle the facade hands to the serve tier: one `Answered` trace per
/// query, with `Evaluation` + per-site spans, regardless of which tier
/// the request entered through.
#[test]
fn machine_backend_traces_direct_queries_through_the_facade() {
    let obs = Observability::armed();
    let mut sys = System::builder()
        .graph(&grid(9, 4))
        .fragmenter(Fragmenter::Linear(LinearConfig {
            fragments: 3,
            ..Default::default()
        }))
        .backend(Backend::SiteThreads)
        .observability(Arc::clone(&obs))
        .build()
        .expect("valid grid system");
    for (x, y) in [(0u32, 35u32), (7, 22), (35, 0)] {
        sys.shortest_path(NodeId(x), NodeId(y));
    }
    let traces = obs.tracer().recent(8);
    assert_eq!(traces.len(), 3);
    for t in &traces {
        assert_eq!(t.outcome, TraceOutcome::Answered, "{t}");
        assert!(t.span(Stage::Evaluation).is_some(), "{t}");
        assert!(
            t.spans
                .iter()
                .any(|s| matches!(s.stage, Stage::SitePhaseOne { .. })),
            "{t}"
        );
    }
    assert_eq!(sys.observe().gauge("machine_queries"), Some(3));
}
