//! Recovery edge-case suite: every way a write-ahead log can be
//! damaged at rest, exercised byte-by-byte.
//!
//! A small durable serve run builds a known-good directory (one
//! attach-time checkpoint + one WAL segment of insert records). The
//! sweeps then corrupt *copies* of that directory and assert, for
//! every single byte offset:
//!
//! - **Truncation**: cutting the WAL at any length never panics
//!   [`discset::recover`], and the recovered state equals the Dijkstra
//!   oracle over exactly the records whose frames fully survive (prefix
//!   consistency — never a partial record, never a skipped one).
//! - **Bit flips**: flipping any single bit never panics recovery; the
//!   CRC32 frame checksum catches the damage and replay truncates at
//!   the damaged frame, again yielding an exact prefix.
//! - **Degenerate directories**: empty and WAL-only directories are the
//!   typed [`DurabilityError::NoCheckpoint`] (never a panic, never an
//!   empty-but-"recovered" state); a checkpoint-only directory recovers
//!   the checkpoint image with nothing replayed.

use discset::closure::{baseline, DisconnectionSetEngine};
use discset::durability::{checkpoint_paths, wal_paths};
use discset::fragment::linear::LinearConfig;
use discset::gen::deterministic::grid;
use discset::graph::{CsrGraph, Edge, NodeId};
use discset::serve::{DurabilityConfig, ServeConfig};
use discset::{DurabilityError, Fragmenter, NetworkUpdate, System};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "discset-durafuzz-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::remove_dir_all(to).ok();
    std::fs::create_dir_all(to).expect("create copy dir");
    for entry in std::fs::read_dir(from).expect("read base dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy file");
    }
}

/// The known-good fixture: a 2-fragment 8-node grid served durably,
/// with `n` distinct fragment-0 inserts WAL-logged (no checkpoint
/// rotation — the attach-time checkpoint stays the base image).
/// Returns the directory, the insert edges in LSN order, and the grid.
fn build_fixture(tag: &str, n: usize) -> (PathBuf, Vec<Edge>, discset::gen::GeneratedGraph) {
    let dir = tmpdir(tag);
    let g = grid(4, 2);
    let sys = System::builder()
        .graph(&g)
        .fragmenter(Fragmenter::Linear(LinearConfig {
            fragments: 2,
            ..Default::default()
        }))
        .build()
        .expect("valid grid system");
    let server = sys.serve_with(ServeConfig {
        workers: 1,
        durability: Some(DurabilityConfig::at(&dir)),
        ..ServeConfig::with_workers(1)
    });
    let f0 = server.snapshot().fragmentation().fragment(0).clone();
    let nodes0 = f0.nodes().to_vec();
    let mut pairs = Vec::new();
    for i in 0..nodes0.len() {
        for j in (i + 1)..nodes0.len() {
            pairs.push((nodes0[i], nodes0[j]));
        }
    }
    assert!(pairs.len() >= n, "fragment 0 too small for {n} inserts");
    let mut edges = Vec::with_capacity(n);
    for (k, &(a, b)) in pairs.iter().take(n).enumerate() {
        let edge = Edge::new(a, b, 1 + (k as u64 % 3));
        server
            .update(&NetworkUpdate::Insert { edge, owner: 0 })
            .expect("durable insert");
        edges.push(edge);
    }
    server.shutdown();
    (dir, edges, g)
}

/// Frame boundaries of the segment: cumulative end offset of each
/// length-prefixed record, walked from the raw bytes.
fn frame_ends(wal: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut at = 0usize;
    while at + 8 <= wal.len() {
        let len = u32::from_le_bytes([wal[at], wal[at + 1], wal[at + 2], wal[at + 3]]) as usize;
        if at + 8 + len > wal.len() {
            break;
        }
        at += 8 + len;
        ends.push(at);
    }
    ends
}

/// The Dijkstra oracle for the state after the first `prefix` inserts:
/// the grid's symmetric closure plus those edges (and their reversals).
fn oracle(g: &discset::gen::GeneratedGraph, edges: &[Edge], prefix: usize) -> CsrGraph {
    let mut es: Vec<Edge> = g.closure_graph().edges().collect();
    for e in &edges[..prefix] {
        es.push(*e);
        es.push(e.reversed());
    }
    CsrGraph::from_edges(g.nodes, &es)
}

/// Recover `dir` and assert the state is *exactly* the oracle for
/// `prefix` surviving records: right replay count, and identical
/// shortest-path answers over every node pair.
fn assert_prefix(
    dir: &Path,
    g: &discset::gen::GeneratedGraph,
    edges: &[Edge],
    prefix: usize,
    what: &str,
) {
    let rec = discset::recover(dir).unwrap_or_else(|e| panic!("{what}: recover failed: {e}"));
    assert_eq!(rec.replayed, prefix, "{what}: wrong surviving prefix");
    let engine = DisconnectionSetEngine::from_snapshot(rec.snapshot);
    let expect = oracle(g, edges, prefix);
    for x in 0..g.nodes as u32 {
        for y in 0..g.nodes as u32 {
            let (x, y) = (NodeId(x), NodeId(y));
            assert_eq!(
                engine.shortest_path(x, y).cost,
                baseline::shortest_path_cost(&expect, x, y),
                "{what}: {x:?} -> {y:?} diverged from the prefix-{prefix} oracle"
            );
        }
    }
}

/// Cut the WAL at every byte length from zero to full: recovery never
/// panics and always yields the longest fully-framed record prefix.
#[test]
fn truncation_at_every_byte_offset_recovers_the_exact_prefix() {
    let (base, edges, g) = build_fixture("trunc", 6);
    let (_, wal_path) = wal_paths(&base).pop().expect("one segment");
    let wal = std::fs::read(&wal_path).expect("read wal");
    let ends = frame_ends(&wal);
    assert_eq!(ends.len(), edges.len(), "fixture: one frame per insert");

    let scratch = tmpdir("trunc-scratch");
    let wal_name = wal_path.file_name().expect("wal file name").to_owned();
    for cut in 0..=wal.len() {
        copy_dir(&base, &scratch);
        std::fs::write(scratch.join(&wal_name), &wal[..cut]).expect("truncate copy");
        let prefix = ends.iter().filter(|&&e| e <= cut).count();
        assert_prefix(&scratch, &g, &edges, prefix, &format!("cut at byte {cut}"));
    }
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

/// Flip one bit at every byte offset: the frame checksum catches every
/// single-bit error (a CRC32 guarantee), so recovery never panics and
/// truncates replay exactly at the damaged frame.
#[test]
fn bit_flip_at_every_byte_offset_recovers_a_consistent_prefix() {
    let (base, edges, g) = build_fixture("flip", 6);
    let (_, wal_path) = wal_paths(&base).pop().expect("one segment");
    let wal = std::fs::read(&wal_path).expect("read wal");
    let ends = frame_ends(&wal);

    let scratch = tmpdir("flip-scratch");
    let wal_name = wal_path.file_name().expect("wal file name").to_owned();
    for at in 0..wal.len() {
        let mut damaged = wal.clone();
        damaged[at] ^= 1 << (at % 8);
        copy_dir(&base, &scratch);
        std::fs::write(scratch.join(&wal_name), &damaged).expect("write damaged copy");
        // Frames that end at or before the flipped byte are untouched;
        // the frame containing it must fail its checksum and stop
        // replay right there.
        let prefix = ends.iter().filter(|&&e| e <= at).count();
        assert_prefix(
            &scratch,
            &g,
            &edges,
            prefix,
            &format!("bit flip at byte {at}"),
        );
    }
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

/// Degenerate directory layouts come back as typed errors or exact
/// states — never panics, never silently-empty "recoveries".
#[test]
fn empty_checkpoint_only_and_wal_only_directories() {
    // Empty directory: nothing to recover from, typed error.
    let empty = tmpdir("empty");
    match discset::recover(&empty) {
        Err(DurabilityError::NoCheckpoint { .. }) => {}
        other => panic!("empty dir must be NoCheckpoint, got {other:?}"),
    }
    std::fs::remove_dir_all(&empty).ok();

    let (base, edges, g) = build_fixture("degen", 4);

    // Checkpoint-only: deleting every WAL segment recovers the
    // attach-time image with nothing replayed (prefix 0).
    let ckpt_only = tmpdir("ckpt-only");
    copy_dir(&base, &ckpt_only);
    for (_, p) in wal_paths(&ckpt_only) {
        std::fs::remove_file(p).expect("drop segment");
    }
    assert_prefix(&ckpt_only, &g, &edges, 0, "checkpoint-only dir");
    std::fs::remove_dir_all(&ckpt_only).ok();

    // WAL-only: a log with no base image is unrecoverable — typed
    // error, not a guess and not a panic.
    let wal_only = tmpdir("wal-only");
    copy_dir(&base, &wal_only);
    for (_, p) in checkpoint_paths(&wal_only) {
        std::fs::remove_file(p).expect("drop checkpoint");
    }
    match discset::recover(&wal_only) {
        Err(DurabilityError::NoCheckpoint { .. }) => {}
        other => panic!("wal-only dir must be NoCheckpoint, got {other:?}"),
    }
    std::fs::remove_dir_all(&wal_only).ok();
    std::fs::remove_dir_all(&base).ok();
}
