//! Serving quickstart: deploy a `System`, hand its snapshot to a
//! `ds_serve` worker pool, hammer it from concurrent client threads
//! while updates stream in, and read the throughput/latency report.
//!
//! ```text
//! cargo run --release --example serve_throughput
//! ```

use discset::fragment::CrossingPolicy;
use discset::gen::{generate_transportation, TransportationConfig};
use discset::graph::{Edge, NodeId};
use discset::{Fragmenter, NetworkUpdate, System};

fn main() {
    // A 6-country transportation network, one site per country.
    let clusters = 6usize;
    let g = generate_transportation(
        &TransportationConfig {
            clusters,
            nodes_per_cluster: 30,
            target_edges_per_cluster: 110,
            ..TransportationConfig::default()
        },
        42,
    );
    let labels = g
        .cluster_of
        .clone()
        .expect("transportation graphs are clustered");
    let sys = System::builder()
        .graph(&g)
        .fragmenter(Fragmenter::ByLabels {
            labels,
            parts: clusters,
            policy: CrossingPolicy::LowerBlock,
        })
        .build()
        .expect("valid network");
    println!(
        "deployed: {} sites over {} nodes; serving with 4 workers",
        clusters, g.nodes
    );

    // One snapshot, four workers, each with its own scratch kernel.
    // The server is Sync: share it by reference across client threads.
    let server = sys.serve(4);
    let nodes = g.nodes as u32;
    let hot = (NodeId(0), NodeId(nodes - 1)); // a popular cross-network route

    std::thread::scope(|s| {
        // Eight reader connections: 60% the hot route, 40% random pairs.
        for t in 0..8u32 {
            let server = &server;
            s.spawn(move || {
                for i in 0..300u32 {
                    let (x, y) = if (i + t) % 5 < 3 {
                        hot
                    } else {
                        (
                            NodeId((i * 37 + t * 11) % nodes),
                            NodeId((i * 53 + t * 29) % nodes),
                        )
                    };
                    let served = server.query(x, y).expect("healthy pool");
                    assert!(served.epoch <= server.epoch());
                }
            });
        }
        // One updater: insert/remove a shortcut in country 0 while the
        // readers run. Each update publishes a new snapshot epoch; the
        // readers never block on it.
        let server = &server;
        s.spawn(move || {
            let f0 = server.snapshot().fragmentation().fragment(0).clone();
            let (a, b) = (f0.nodes()[0], *f0.nodes().last().unwrap());
            for _ in 0..10 {
                server
                    .update(&NetworkUpdate::Insert {
                        edge: Edge::new(a, b, 1),
                        owner: 0,
                    })
                    .expect("valid insert");
                server
                    .update(&NetworkUpdate::Remove {
                        src: a,
                        dst: b,
                        owner: 0,
                    })
                    .expect("valid remove");
            }
        });
    });

    let stats = server.shutdown();
    println!(
        "\nserved {} requests in {:.2?} ({:.0} req/s aggregate)",
        stats.requests,
        stats.elapsed,
        stats.throughput_qps()
    );
    println!(
        "epochs: {} updates -> {} publications, final epoch {}",
        stats.updates, stats.publications, stats.epoch
    );
    println!(
        "micro-batching: {} batches, {:.1} requests/batch, {:.0}% coalesced, amortization {:.2}",
        stats.batches,
        stats.requests as f64 / stats.batches.max(1) as f64,
        100.0 * stats.coalesced_fraction(),
        stats.batch.amortization()
    );
    println!(
        "answer cache: {} hits / {} misses ({:.0}% hit rate); \
         queue: depth {} high-water {} of {}, {} shed",
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.cache_hit_fraction(),
        stats.queue_depth,
        stats.queue_high_water,
        stats.queue_capacity,
        stats.queue_rejections
    );
    println!(
        "latency: p50 {:.0}us  p99 {:.0}us  max {:.0}us",
        stats.latency.p50_us, stats.latency.p99_us, stats.latency.max_us
    );
    println!(
        "workers: {} (balance ratio {:.2}), scratch sweeps {} / grows {}",
        stats.workers,
        stats.balance_ratio(),
        stats.scratch.sweeps,
        stats.scratch.grows
    );
    println!(
        "tables served: {} strategy, built by the {} backend",
        match stats.strategy {
            discset::PrecomputeStrategy::Skeleton => "skeleton",
            discset::PrecomputeStrategy::GlobalSweep => "global-sweep",
        },
        stats.backend
    );
}
