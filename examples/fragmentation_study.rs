//! Compare the three fragmentation strategies on one transportation
//! graph — a single-graph version of the paper's Table 1 study, with the
//! per-goal commentary of §4.2.
//!
//! ```text
//! cargo run --release --example fragmentation_study [seed]
//! ```

use discset::fragment::bond_energy::{bond_energy, BondEnergyConfig, SplitRule};
use discset::fragment::center::{center_based, CenterConfig, CenterSelection};
use discset::fragment::linear::{linear_sweep, LinearConfig};
use discset::fragment::Fragmentation;
use discset::gen::{generate_transportation, GeneratedGraph, TransportationConfig};
use discset::graph::NodeId;
use discset::{Backend, Fragmenter, System, TcEngine};

fn report(label: &str, goal: &str, frag: &Fragmentation, g: &GeneratedGraph) {
    let m = frag.metrics();
    println!("{label:<22} {m}");
    println!("{:<22}   goal: {goal}", "");
    let diams: Vec<u32> = frag.fragments().iter().map(|f| f.diameter()).collect();
    println!("{:<22}   fragment diameters: {diams:?}", "");

    // Run the same query workload over this fragmentation on both
    // execution backends through the System facade: the per-query site
    // accounting shows how the fragmentation shape plays out at query
    // time, and the backends must agree query by query.
    let queries: Vec<(NodeId, NodeId)> = (0..8u32)
        .map(|i| {
            (
                NodeId(i * 11 % g.nodes as u32),
                NodeId((i * 17 + 50) % g.nodes as u32),
            )
        })
        .collect();
    for backend in [Backend::Inline, Backend::SiteThreads] {
        let mut sys = System::builder()
            .graph(g)
            .fragmenter(Fragmenter::Prebuilt(frag.clone()))
            .backend(backend)
            .build()
            .expect("system deploys");
        let mut site_queries = 0;
        let mut tuples = 0;
        let mut reachable = 0;
        for &(x, y) in &queries {
            let a = sys.shortest_path(x, y);
            site_queries += a.stats.site_queries;
            tuples += a.stats.tuples_shipped;
            reachable += usize::from(a.cost.is_some());
        }
        println!(
            "{:<22}   {}: {reachable}/{} reachable, {site_queries} site subqueries, \
             {tuples} tuples shipped",
            "",
            sys.backend_name(),
            queries.len()
        );
    }
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let cfg = TransportationConfig::table1();
    let g = generate_transportation(&cfg, seed);
    println!(
        "transportation graph: {} nodes in {} clusters, {} connections (seed {seed})\n",
        g.nodes,
        cfg.clusters,
        g.connection_count()
    );
    let el = g.edge_list();

    let center = center_based(
        &el,
        &CenterConfig {
            fragments: 4,
            ..Default::default()
        },
    )
    .expect("non-empty graph");
    report(
        "center-based",
        "equally sized fragments (sec 3.1)",
        &center.fragmentation,
        &g,
    );

    let distributed = center_based(
        &el,
        &CenterConfig {
            fragments: 4,
            selection: CenterSelection::Distributed { pool_factor: 8.0 },
            ..Default::default()
        },
    )
    .expect("non-empty graph");
    report(
        "distributed centers",
        "spread centers via coordinates (sec 4.2.1)",
        &distributed.fragmentation,
        &g,
    );

    let bea = bond_energy(
        &el,
        &BondEnergyConfig {
            split: SplitRule::CutBelowThreshold(4),
            min_block_edges: 30,
            ..Default::default()
        },
    )
    .expect("non-empty graph");
    report(
        "bond-energy",
        "small disconnection sets (sec 3.2)",
        &bea.fragmentation,
        &g,
    );

    let linear = linear_sweep(
        &el,
        &LinearConfig {
            fragments: 4,
            ..Default::default()
        },
    )
    .expect("coordinates present");
    report(
        "linear",
        "acyclic fragmentation graph (sec 3.3)",
        &linear.fragmentation,
        &g,
    );

    println!("\nconclusion of sec 4.2.3: each algorithm meets the goal it was built for;");
    println!("the paper expects small disconnection sets (bond-energy) to matter most.");
}
