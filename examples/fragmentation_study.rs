//! Compare the three fragmentation strategies on one transportation
//! graph — a single-graph version of the paper's Table 1 study, with the
//! per-goal commentary of §4.2.
//!
//! ```text
//! cargo run --release --example fragmentation_study [seed]
//! ```

use discset::fragment::bond_energy::{bond_energy, BondEnergyConfig, SplitRule};
use discset::fragment::center::{center_based, CenterConfig, CenterSelection};
use discset::fragment::linear::{linear_sweep, LinearConfig};
use discset::fragment::Fragmentation;
use discset::gen::{generate_transportation, TransportationConfig};

fn report(label: &str, goal: &str, frag: &Fragmentation) {
    let m = frag.metrics();
    println!("{label:<22} {m}");
    println!("{:<22}   goal: {goal}", "");
    let diams: Vec<u32> = frag.fragments().iter().map(|f| f.diameter()).collect();
    println!("{:<22}   fragment diameters: {diams:?}", "");
}

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7u64);
    let cfg = TransportationConfig::table1();
    let g = generate_transportation(&cfg, seed);
    println!(
        "transportation graph: {} nodes in {} clusters, {} connections (seed {seed})\n",
        g.nodes,
        cfg.clusters,
        g.connection_count()
    );
    let el = g.edge_list();

    let center = center_based(&el, &CenterConfig { fragments: 4, ..Default::default() })
        .expect("non-empty graph");
    report("center-based", "equally sized fragments (sec 3.1)", &center.fragmentation);

    let distributed = center_based(
        &el,
        &CenterConfig {
            fragments: 4,
            selection: CenterSelection::Distributed { pool_factor: 8.0 },
            ..Default::default()
        },
    )
    .expect("non-empty graph");
    report(
        "distributed centers",
        "spread centers via coordinates (sec 4.2.1)",
        &distributed.fragmentation,
    );

    let bea = bond_energy(
        &el,
        &BondEnergyConfig {
            split: SplitRule::CutBelowThreshold(4),
            min_block_edges: 30,
            ..Default::default()
        },
    )
    .expect("non-empty graph");
    report("bond-energy", "small disconnection sets (sec 3.2)", &bea.fragmentation);

    let linear = linear_sweep(&el, &LinearConfig { fragments: 4, ..Default::default() })
        .expect("coordinates present");
    report("linear", "acyclic fragmentation graph (sec 3.3)", &linear.fragmentation);

    println!("\nconclusion of sec 4.2.3: each algorithm meets the goal it was built for;");
    println!("the paper expects small disconnection sets (bond-energy) to matter most.");
}
