//! Materialize the full transitive closure of a fragmented network in
//! bulk — the paper's parallel strategy run to completion instead of
//! per query — and compare it against the sequential semi-naive
//! baseline and spot-check it against the per-query engine.
//!
//! ```text
//! cargo run --release --example materialize [seed]
//! ```

use std::time::Instant;

use discset::gen::{generate_transportation, TransportationConfig};
use discset::graph::NodeId;
use discset::relation::bulk::FragmentPartition;
use discset::relation::tc;
use discset::{Fragmenter, MaterializeConfig, System, TcEngine};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let cfg = TransportationConfig {
        clusters: 6,
        nodes_per_cluster: 22,
        target_edges_per_cluster: 70,
        ..TransportationConfig::default()
    };
    let g = generate_transportation(&cfg, seed);
    println!(
        "transportation graph: {} nodes, {} connections, {} clusters (seed {seed})",
        g.nodes,
        g.connections.len(),
        cfg.clusters
    );

    // Fragment by the generator's semantic clusters and deploy.
    let labels = g.cluster_of.clone().expect("transportation has clusters");
    let mut sys = System::builder()
        .graph(&g)
        .fragmenter(Fragmenter::ByLabels {
            labels,
            parts: cfg.clusters,
            policy: discset::fragment::CrossingPolicy::LowerBlock,
        })
        .build()
        .expect("system deploys");

    // Bulk-materialize the closure through the facade.
    let t0 = Instant::now();
    let (closure, stats) = sys.materialize().expect("fixpoint converges");
    let bulk_time = t0.elapsed();
    println!("\nfragmented-parallel materialization:");
    println!("  {stats}");
    println!("  {} tuples in {bulk_time:?}", closure.len());
    for (i, r) in stats.per_round.iter().enumerate() {
        println!(
            "  round {i}: {} active fragments, {} delta tuples, {} exchanged",
            r.active_fragments, r.improved, r.exchanged
        );
    }
    println!(
        "  disconnection-set selection kept {} of {} improvements local",
        stats.kept_local,
        stats.kept_local + stats.exchanged_tuples
    );

    // Sequential baseline on the identical union relation.
    let partition = FragmentPartition::new(sys.fragmentation(), true);
    let t1 = Instant::now();
    let (seq, seq_stats) = tc::seminaive_closure(&partition.union_relation(), None);
    let seq_time = t1.elapsed();
    println!("\nsequential semi-naive baseline:");
    println!("  {seq_stats}");
    println!("  {} tuples in {seq_time:?}", seq.len());
    assert_eq!(closure.rows(), seq.rows(), "bulk must be tuple-identical");
    println!("  -> tuple-identical to the bulk result");

    // Keyhole: restrict the closure to a handful of sources (§2.1).
    let sources: Vec<NodeId> = (0..4u32).map(NodeId).collect();
    let (slice, slice_stats) = sys
        .materialize_with(MaterializeConfig {
            sources: Some(sources.clone()),
            ..Default::default()
        })
        .expect("fixpoint converges");
    println!(
        "\nkeyhole slice from {} sources: {} tuples ({})",
        sources.len(),
        slice.len(),
        slice_stats
    );

    // Spot-check materialized tuples against the per-query engine
    // (skipping self-pairs: the closure stores the cheapest round trip,
    // the engine answers 0 for x == y by convention).
    let mut checked = 0;
    for t in closure.rows().iter().step_by(closure.len() / 16 + 1) {
        if t.src == t.dst {
            continue;
        }
        let answer = sys.shortest_path(t.src, t.dst);
        assert_eq!(answer.cost, Some(t.cost), "{} -> {}", t.src, t.dst);
        checked += 1;
    }
    println!("{checked} sampled tuples confirmed by the per-query engine");
}
