//! Observability quickstart: arm one `ds_obs` bundle on a `System` and
//! watch it collect across all three tiers — machine-backed engine
//! queries, the serve pool, and bulk materialization — then read the
//! results four ways: per-request span breakdowns, the slow-query log,
//! the workload recorder's hot pairs, and the registry's Prometheus /
//! JSON exports.
//!
//! ```text
//! cargo run --release --example observe
//! ```

use discset::fragment::CrossingPolicy;
use discset::gen::{generate_transportation, TransportationConfig};
use discset::graph::{Edge, NodeId};
use discset::{Backend, Fragmenter, NetworkUpdate, Observability, System, TcEngine};

fn main() {
    // A 6-country transportation network, one site thread per country,
    // with one armed observability bundle shared by every tier.
    let clusters = 6usize;
    let g = generate_transportation(
        &TransportationConfig {
            clusters,
            nodes_per_cluster: 30,
            target_edges_per_cluster: 110,
            ..TransportationConfig::default()
        },
        42,
    );
    let labels = g
        .cluster_of
        .clone()
        .expect("transportation graphs are clustered");
    let obs = Observability::armed();
    let mut sys = System::builder()
        .graph(&g)
        .fragmenter(Fragmenter::ByLabels {
            labels,
            parts: clusters,
            policy: CrossingPolicy::LowerBlock,
        })
        .backend(Backend::SiteThreads)
        .observability(obs.clone())
        .build()
        .expect("valid network");
    let nodes = g.nodes as u32;

    // Tier 1 — machine: direct engine queries. Each leaves a trace with
    // per-site phase-one spans and per-chain evaluation segments.
    for (x, y) in [(0, nodes - 1), (7, nodes - 12), (3, 3)] {
        sys.shortest_path(NodeId(x), NodeId(y));
    }

    // Tier 2 — serve: a worker pool inherits the same bundle through
    // the facade. A hot route dominates (the workload recorder will
    // surface it), one update publishes an epoch, one `connected` probe
    // rides the reachability index.
    let server = sys.serve(2);
    let hot = (NodeId(0), NodeId(nodes - 1));
    for i in 0..40u32 {
        let (x, y) = if i % 3 != 0 {
            hot
        } else {
            (NodeId((i * 37) % nodes), NodeId((i * 53) % nodes))
        };
        server.query(x, y).expect("healthy pool");
    }
    let f0 = server.snapshot().fragmentation().fragment(0).clone();
    let (a, b) = (f0.nodes()[0], *f0.nodes().last().expect("non-empty"));
    server
        .update(&NetworkUpdate::Insert {
            edge: Edge::new(a, b, 1),
            owner: 0,
        })
        .expect("valid insert");
    server.connected(hot.0, hot.1).expect("healthy pool");
    server.shutdown();

    // Tier 3 — bulk: materialize the full closure; its stats land as
    // `materialize_*` gauges in the same registry.
    sys.materialize().expect("closure converges");

    // ---- Read it all back. ------------------------------------------

    println!("== recent request traces (admission -> spans -> outcome) ==");
    for t in obs.tracer().recent(8) {
        println!("  {t}");
    }

    let slow = obs.slow_queries().recent(3);
    println!(
        "\n== slow-query log ({} retained, adaptive p999 threshold) ==",
        obs.slow_queries().len()
    );
    for t in slow {
        println!("  {t}");
    }

    let w = obs.workload();
    println!(
        "\n== workload recorder ({} vertex pairs, {} fragment pairs, {} dropped) ==",
        w.distinct_vertex_pairs(),
        w.distinct_fragment_pairs(),
        w.dropped()
    );
    for p in w.top_vertex_pairs(3) {
        println!("  route {} -> {}: {} requests", p.a, p.b, p.count);
    }
    for p in w.top_fragment_pairs(3) {
        println!("  fragment pair {} <-> {}: {} requests", p.a, p.b, p.count);
    }

    let snap = sys.observe();
    println!("\n== Prometheus text exposition ==");
    print!("{}", snap.to_prometheus());
    println!("\n== JSON export ==");
    println!("{}", snap.to_json());
}
