//! Quickstart: fragment a small network, build the engine, ask questions.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use discset::closure::engine::{DisconnectionSetEngine, EngineConfig};
use discset::fragment::linear::{linear_sweep, LinearConfig};
use discset::gen::deterministic::grid;
use discset::graph::NodeId;

fn main() {
    // A 12x4 grid road network (unit costs), nodes numbered row-major.
    let network = grid(12, 4);
    println!(
        "network: {} nodes, {} connections",
        network.nodes,
        network.connection_count()
    );

    // Fragment it with the linear sweep (guaranteed acyclic fragmentation
    // graph, sec 3.3 of the paper).
    let outcome = linear_sweep(
        &network.edge_list(),
        &LinearConfig { fragments: 4, ..Default::default() },
    )
    .expect("grid has edges and coordinates");
    let fragmentation = outcome.fragmentation;
    println!("fragmentation: {}", fragmentation.metrics());
    for (pair, nodes) in fragmentation.disconnection_sets() {
        println!("  DS{pair:?} = {nodes:?}");
    }

    // Build the disconnection set engine (precomputes the complementary
    // information) and query it.
    let engine = DisconnectionSetEngine::build(
        network.closure_graph(),
        fragmentation,
        true, // connections are symmetric
        EngineConfig::default(),
    )
    .expect("engine builds");
    println!(
        "complementary info: {} border nodes, {} shortcut tuples",
        engine.complementary().border_count(),
        engine.complementary().pair_count()
    );

    let (a, b) = (NodeId(0), NodeId(47)); // opposite corners
    let answer = engine.shortest_path(a, b);
    println!(
        "shortest path {}->{}: cost {:?} via fragment chain {:?}",
        a, b, answer.cost, answer.best_chain
    );
    println!(
        "  phase one: {} site subqueries, {} tuples shipped",
        answer.stats.site_queries, answer.stats.tuples_shipped
    );
    assert!(engine.reachable(a, b));
}
