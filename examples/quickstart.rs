//! Quickstart: fragment a small network, deploy a `System`, ask questions
//! — then swap the execution backend without touching the query code.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use discset::fragment::linear::LinearConfig;
use discset::gen::deterministic::grid;
use discset::graph::NodeId;
use discset::{Backend, Fragmenter, QueryRequest, System, TcEngine};

fn main() {
    // A 12x4 grid road network (unit costs), nodes numbered row-major.
    let network = grid(12, 4);
    println!(
        "network: {} nodes, {} connections",
        network.nodes,
        network.connection_count()
    );

    let (a, b) = (NodeId(0), NodeId(47)); // opposite corners

    // Pick generator output x fragmenter x backend declaratively; the
    // returned System implements TcEngine, so the query code below is
    // identical for the in-process engine and the site-thread machine.
    for backend in [Backend::Inline, Backend::SiteThreads] {
        let mut sys = System::builder()
            .graph(&network)
            .fragmenter(Fragmenter::Linear(LinearConfig {
                fragments: 4,
                ..Default::default()
            }))
            .backend(backend)
            .build()
            .expect("grid has edges and coordinates");

        println!(
            "\n== backend: {} ({} sites) ==",
            sys.backend_name(),
            sys.site_count()
        );
        if backend == Backend::Inline {
            // The fragmentation is the same on every backend; print it once.
            println!("fragmentation: {}", sys.fragmentation().metrics());
            for (pair, nodes) in sys.fragmentation().disconnection_sets() {
                println!("  DS{pair:?} = {nodes:?}");
            }
        }

        let answer = sys.shortest_path(a, b);
        println!(
            "shortest path {}->{}: cost {:?} via fragment chain {:?}",
            a, b, answer.cost, answer.best_chain
        );
        println!(
            "  phase one: {} site subqueries, {} tuples shipped",
            answer.stats.site_queries, answer.stats.tuples_shipped
        );
        assert!(sys.connected(a, b));

        // Batch evaluation: chain planning (and the interior segment
        // relations) are computed once per fragment pair and shared.
        let requests: Vec<QueryRequest> = (0..8u32)
            .map(|i| QueryRequest::new(NodeId(i), NodeId(47 - i)))
            .collect();
        let batch = sys.query_batch(&requests);
        println!(
            "batch of {}: {} plans computed, {} reused; {} segments computed, {} reused \
             ({:.0}% of work amortized)",
            batch.stats.queries,
            batch.stats.plans_computed,
            batch.stats.plans_reused,
            batch.stats.segments_computed,
            batch.stats.segments_reused,
            batch.stats.amortization() * 100.0
        );
    }
}
