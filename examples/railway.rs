//! The paper's motivating scenario (§2.1): a European railway network
//! "naturally fragmented by country", queried for the shortest connection
//! between Amsterdam and Milan.
//!
//! Demonstrates: semantic fragmentation, border cities as disconnection
//! sets, the in-country fast path ("queries about the shortest path of
//! two cities in Holland can be answered by the Dutch railway computer
//! system alone"), multi-chain planning on a cyclic fragmentation graph
//! (two routes over the Alps), full route reconstruction — and backend
//! swapping through the `System` builder: the same queries run unchanged
//! on the in-process engine and the one-thread-per-country machine.
//!
//! ```text
//! cargo run --example railway
//! ```

use discset::closure::baseline;
use discset::closure::engine::EngineConfig;
use discset::fragment::CrossingPolicy;
use discset::gen::output::expand_connections;
use discset::graph::{CsrGraph, Edge, NodeId};
use discset::{Backend, Fragmenter, System, TcEngine};

const CITIES: &[(&str, u32)] = &[
    // Holland (country 0)
    ("Amsterdam", 0),
    ("Utrecht", 0),
    ("Rotterdam", 0),
    ("Eindhoven", 0),
    ("Arnhem", 0),
    // Germany (country 1)
    ("Cologne", 1),
    ("Frankfurt", 1),
    ("Stuttgart", 1),
    ("Munich", 1),
    ("Karlsruhe", 1),
    // Switzerland (country 2)
    ("Basel", 2),
    ("Zurich", 2),
    ("Chur", 2),
    ("Bern", 2),
    // Italy (country 3)
    ("Milan", 3),
    ("Verona", 3),
    ("Turin", 3),
    ("Bologna", 3),
    // Austria (country 4)
    ("Innsbruck", 4),
    ("Salzburg", 4),
];

/// (from, to, km) — one tuple per railway line; travel is symmetric.
const LINES: &[(&str, &str, u64)] = &[
    // Dutch network
    ("Amsterdam", "Utrecht", 40),
    ("Amsterdam", "Rotterdam", 80),
    ("Utrecht", "Arnhem", 60),
    ("Utrecht", "Eindhoven", 90),
    ("Rotterdam", "Eindhoven", 110),
    ("Eindhoven", "Arnhem", 80),
    // Dutch-German border crossings
    ("Arnhem", "Cologne", 120),
    ("Eindhoven", "Cologne", 140),
    // German network
    ("Cologne", "Frankfurt", 190),
    ("Frankfurt", "Stuttgart", 210),
    ("Frankfurt", "Karlsruhe", 140),
    ("Karlsruhe", "Stuttgart", 80),
    ("Stuttgart", "Munich", 220),
    // German-Swiss border
    ("Karlsruhe", "Basel", 190),
    // German-Austrian border
    ("Munich", "Innsbruck", 160),
    ("Munich", "Salzburg", 150),
    // Swiss network
    ("Basel", "Zurich", 90),
    ("Basel", "Bern", 100),
    ("Zurich", "Chur", 120),
    ("Bern", "Zurich", 120),
    // Swiss-Italian border (the Gotthard axis)
    ("Chur", "Milan", 160),
    ("Zurich", "Milan", 230),
    // Austrian-Italian border (the Brenner axis)
    ("Innsbruck", "Verona", 200),
    // Italian network
    ("Milan", "Verona", 160),
    ("Milan", "Turin", 140),
    ("Verona", "Bologna", 120),
    ("Milan", "Bologna", 210),
];

const COUNTRIES: &[&str] = &["Holland", "Germany", "Switzerland", "Italy", "Austria"];

fn id_of(name: &str) -> NodeId {
    NodeId(
        CITIES
            .iter()
            .position(|(c, _)| *c == name)
            .expect("known city") as u32,
    )
}

fn name_of(v: NodeId) -> &'static str {
    CITIES[v.index()].0
}

fn main() {
    let connections: Vec<Edge> = LINES
        .iter()
        .map(|&(a, b, km)| Edge::new(id_of(a), id_of(b), km))
        .collect();
    let labels: Vec<u32> = CITIES.iter().map(|&(_, c)| c).collect();

    // "Assume that data are naturally fragmented by country." Each
    // country's railway computer system is one site of the System.
    let mut sys = System::builder()
        .network(CITIES.len(), connections.clone())
        .fragmenter(Fragmenter::ByLabels {
            labels: labels.clone(),
            parts: COUNTRIES.len(),
            policy: CrossingPolicy::LowerBlock,
        })
        .backend(Backend::Inline)
        .config(EngineConfig {
            store_paths: true,
            ..EngineConfig::default()
        })
        .build()
        .expect("network is non-empty");

    println!(
        "fragmentation by country: {}",
        sys.fragmentation().metrics()
    );
    for ((i, j), cities) in sys.fragmentation().disconnection_sets() {
        let names: Vec<&str> = cities.iter().map(|&v| name_of(v)).collect();
        println!("  border {} - {}: {:?}", COUNTRIES[i], COUNTRIES[j], names);
    }
    let fg = sys.fragmentation().fragmentation_graph();
    println!(
        "fragmentation graph acyclic: {} (two alpine routes make it cyclic)",
        fg.is_acyclic()
    );

    let graph = CsrGraph::from_edges(CITIES.len(), &expand_connections(&connections, true));

    // The paper's headline query.
    let (ams, mil) = (id_of("Amsterdam"), id_of("Milan"));
    let route = sys
        .route(ams, mil)
        .expect("routes enabled")
        .expect("connected");
    println!("\nAmsterdam -> Milan: {} km", route.cost);
    println!(
        "  fragment chain: {:?}",
        route
            .chain
            .iter()
            .map(|&f| COUNTRIES[f])
            .collect::<Vec<_>>()
    );
    println!(
        "  border crossings: {:?}",
        route
            .waypoints
            .iter()
            .map(|&w| name_of(w))
            .collect::<Vec<_>>()
    );
    println!(
        "  full route: {}",
        route
            .nodes
            .iter()
            .map(|&v| name_of(v))
            .collect::<Vec<_>>()
            .join(" - ")
    );
    assert_eq!(
        Some(route.cost),
        baseline::shortest_path_cost(&graph, ams, mil),
        "disconnection set answer must match the centralized baseline"
    );

    // The in-country fast path.
    let (utr, ehv) = (id_of("Utrecht"), id_of("Eindhoven"));
    let answer = sys.shortest_path(utr, ehv);
    println!(
        "\nUtrecht -> Eindhoven: {:?} km, answered by {:?} alone ({} site subquery)",
        answer.cost.expect("connected"),
        answer
            .best_chain
            .as_ref()
            .map(|c| COUNTRIES[c[0]])
            .expect("single fragment"),
        answer.stats.site_queries
    );

    // A query that must compare the Gotthard and Brenner chains.
    let (ffm, ver) = (id_of("Frankfurt"), id_of("Verona"));
    let a = sys.shortest_path(ffm, ver);
    println!(
        "\nFrankfurt -> Verona: {:?} km via {:?} ({} chains compared)",
        a.cost.expect("connected"),
        a.best_chain
            .as_ref()
            .map(|c| c.iter().map(|&f| COUNTRIES[f]).collect::<Vec<_>>())
            .expect("reachable"),
        a.stats.chains_evaluated
    );
    assert_eq!(a.cost, baseline::shortest_path_cost(&graph, ffm, ver));

    // The same railway network on the message-passing backend: one
    // thread per national railway system, identical answers. Only the
    // builder line changes.
    let mut machine_sys = System::builder()
        .network(CITIES.len(), connections)
        .fragmenter(Fragmenter::ByLabels {
            labels,
            parts: COUNTRIES.len(),
            policy: CrossingPolicy::LowerBlock,
        })
        .backend(Backend::SiteThreads)
        .build()
        .expect("network is non-empty");
    let m = machine_sys.shortest_path(ams, mil);
    println!(
        "\nsite-threads backend ({} national computer systems): Amsterdam -> Milan {} km",
        machine_sys.site_count(),
        m.cost.expect("connected")
    );
    assert_eq!(m.cost, Some(route.cost), "backends must agree");
}
