//! Demonstrate the parallel evaluation on the simulated multiprocessor
//! database machine (the PRISMA/DB stand-in) and the phase-one
//! independence the paper's speed-up rests on.
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use std::time::Instant;

use discset::closure::baseline;
use discset::closure::engine::{DisconnectionSetEngine, EngineConfig};
use discset::closure::executor::ExecutionMode;
use discset::fragment::{semantic, CrossingPolicy};
use discset::gen::{generate_transportation, TransportationConfig};
use discset::graph::NodeId;
use discset::machine::Machine;

fn main() {
    for clusters in [2usize, 4, 8] {
        let nodes_per_cluster = 40;
        let cfg = TransportationConfig {
            clusters,
            nodes_per_cluster,
            target_edges_per_cluster: nodes_per_cluster * 4,
            ..TransportationConfig::default()
        };
        let g = generate_transportation(&cfg, 1);
        let labels = g.cluster_of.clone().expect("labels");
        let frag = semantic::by_labels(
            g.nodes,
            &g.connections,
            &labels,
            clusters,
            CrossingPolicy::LowerBlock,
        )
        .expect("non-empty");
        let csr = g.closure_graph();

        // End-to-end query across the whole chain.
        let (x, y) = (NodeId(0), NodeId((g.nodes - 3) as u32));
        let want = baseline::shortest_path_cost(&csr, x, y);

        let seq = DisconnectionSetEngine::build(
            csr.clone(),
            frag.clone(),
            true,
            EngineConfig::default(),
        )
        .expect("engine builds");
        let par = DisconnectionSetEngine::build(
            csr.clone(),
            frag.clone(),
            true,
            EngineConfig { mode: ExecutionMode::Parallel, ..EngineConfig::default() },
        )
        .expect("engine builds");

        let t = Instant::now();
        let a = seq.shortest_path(x, y);
        let t_seq = t.elapsed();
        let t = Instant::now();
        let b = par.shortest_path(x, y);
        let t_par = t.elapsed();
        assert_eq!(a.cost, want);
        assert_eq!(b.cost, want);

        let ideal = a.stats.total_site_busy.as_secs_f64()
            / a.stats.max_site_busy.as_secs_f64().max(1e-12);

        // And the full message-passing machine.
        let mut machine = Machine::deploy(csr.clone(), frag, true).expect("deploys");
        let m_cost = machine.shortest_path(x, y);
        assert_eq!(m_cost, want);
        let stats = machine.stats();

        println!("{clusters} fragments:");
        println!("  query {x}->{y}: cost {want:?}");
        println!(
            "  engine: sequential {:?}, parallel {:?}, ideal phase-one speedup {:.2}x",
            t_seq, t_par, ideal
        );
        println!(
            "  machine: {} messages, {} tuples shipped, busy-balance ratio {:.2}",
            stats.messages_sent + stats.messages_received,
            stats.tuples_shipped,
            stats.balance_ratio()
        );
        machine.shutdown();
    }
    println!("\nphase one needs no communication; tuples move only for the final joins.");
}
