//! Demonstrate the parallel evaluation on every execution backend and
//! the phase-one independence the paper's speed-up rests on.
//!
//! All backends — sequential inline, thread-per-subquery inline, and the
//! PRISMA/DB-style message-passing machine — are deployed through the
//! `System` builder and timed through the one `TcEngine` code path.
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use std::time::Instant;

use discset::closure::baseline;
use discset::closure::engine::EngineConfig;
use discset::closure::executor::ExecutionMode;
use discset::fragment::CrossingPolicy;
use discset::gen::{generate_transportation, TransportationConfig};
use discset::graph::NodeId;
use discset::{Backend, Fragmenter, QueryRequest, System, TcEngine};

fn main() {
    for clusters in [2usize, 4, 8] {
        let nodes_per_cluster = 40;
        let cfg = TransportationConfig {
            clusters,
            nodes_per_cluster,
            target_edges_per_cluster: nodes_per_cluster * 4,
            ..TransportationConfig::default()
        };
        let g = generate_transportation(&cfg, 1);
        let labels = g.cluster_of.clone().expect("labels");
        let fragmenter = Fragmenter::ByLabels {
            labels,
            parts: clusters,
            policy: CrossingPolicy::LowerBlock,
        };
        let csr = g.closure_graph();

        // End-to-end query across the whole chain.
        let (x, y) = (NodeId(0), NodeId((g.nodes - 3) as u32));
        let want = baseline::shortest_path_cost(&csr, x, y);
        println!("{clusters} fragments: query {x}->{y}, cost {want:?}");

        // One deployment per backend; the query loop never changes.
        let variants: [(&str, Backend, ExecutionMode); 3] = [
            (
                "inline sequential",
                Backend::Inline,
                ExecutionMode::Sequential,
            ),
            ("inline parallel", Backend::Inline, ExecutionMode::Parallel),
            (
                "site threads",
                Backend::SiteThreads,
                ExecutionMode::Sequential,
            ),
        ];
        for (name, backend, mode) in variants {
            let mut sys = System::builder()
                .graph(&g)
                .fragmenter(fragmenter.clone())
                .backend(backend)
                .config(EngineConfig {
                    mode,
                    ..EngineConfig::default()
                })
                .build()
                .expect("system deploys");

            let t = Instant::now();
            let a = sys.shortest_path(x, y);
            let elapsed = t.elapsed();
            assert_eq!(a.cost, want, "{name} must match the baseline");

            // Ideal phase-one speedup from the answer's site accounting:
            // total site work over the longest single site subquery.
            let ideal = a.stats.total_site_busy.as_secs_f64()
                / a.stats.max_site_busy.as_secs_f64().max(1e-12);
            println!(
                "  {name:<18} {elapsed:>10?}  {} site subqueries, {} tuples shipped, \
                 ideal phase-one speedup {ideal:.2}x",
                a.stats.site_queries, a.stats.tuples_shipped
            );

            // Batch the same chain 16 times: planning and interior
            // segments amortize, only the endpoint subqueries repeat.
            let requests: Vec<QueryRequest> = (0..16u32)
                .map(|i| {
                    QueryRequest::new(NodeId(i % 5), NodeId((g.nodes - 3 - i as usize % 5) as u32))
                })
                .collect();
            let t = Instant::now();
            let batch = sys.query_batch(&requests);
            println!(
                "  {:<18} {:>10?}  batch of {}: {:.0}% of planning/segment work amortized",
                "",
                t.elapsed(),
                batch.stats.queries,
                batch.stats.amortization() * 100.0
            );
        }
    }
    println!("\nphase one needs no communication; tuples move only for the final joins.");
}
